"""Destination hitlist — one representative address per advertised prefix.

The paper's destination set "included 1 IP address in each advertised
BGP prefix ... For each prefix, the set includes the address that was
most responsive to previous ping probes [7]" (the ISI hitlist). Our
equivalent samples one host address per advertised /24, stably seeded,
skipping the low reserved addresses the way a hitlist would skip
network/broadcast addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.net.addr import Prefix, addr_to_int, int_to_addr, parse_prefix
from repro.topology.prefixes import PrefixTable
from repro.rng import stable_randint

__all__ = ["Destination", "Hitlist", "build_hitlist"]

#: Host part range representative addresses are drawn from. .1 is left
#: for gateways and the high end for infrastructure (the per-prefix
#: access router lives at .254).
_HOST_LOW = 2
_HOST_HIGH = 200


@dataclass(frozen=True)
class Destination:
    """One probed destination: an address inside an advertised prefix."""

    addr: int
    prefix: Prefix
    asn: int


class Hitlist:
    """The probe target list: destinations indexed by address and prefix."""

    def __init__(self, destinations: List[Destination]) -> None:
        self._destinations = sorted(destinations, key=lambda d: d.addr)
        self._by_addr: Dict[int, Destination] = {}
        self._by_prefix: Dict[Prefix, Destination] = {}
        for dest in self._destinations:
            if dest.addr in self._by_addr:
                raise ValueError(f"duplicate hitlist address {dest.addr}")
            if dest.prefix in self._by_prefix:
                raise ValueError(f"duplicate hitlist prefix {dest.prefix}")
            if dest.addr not in dest.prefix:
                raise ValueError(
                    f"hitlist address outside its prefix: {dest}"
                )
            self._by_addr[dest.addr] = dest
            self._by_prefix[dest.prefix] = dest

    def __len__(self) -> int:
        return len(self._destinations)

    def __iter__(self) -> Iterator[Destination]:
        return iter(self._destinations)

    def addresses(self) -> List[int]:
        return [dest.addr for dest in self._destinations]

    def by_addr(self, addr: int) -> Optional[Destination]:
        return self._by_addr.get(addr)

    def by_prefix(self, prefix: Prefix) -> Optional[Destination]:
        return self._by_prefix.get(prefix)

    def in_asn(self, asn: int) -> List[Destination]:
        return [dest for dest in self._destinations if dest.asn == asn]

    def asns(self) -> List[int]:
        return sorted({dest.asn for dest in self._destinations})

    # -- hitlist-file serialisation (ISI-style ``addr|prefix|asn``) -------

    def to_lines(self) -> Iterator[str]:
        for dest in self._destinations:
            yield f"{int_to_addr(dest.addr)}|{dest.prefix}|{dest.asn}"

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "Hitlist":
        destinations = []
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|")
            if len(fields) != 3:
                raise ValueError(f"malformed hitlist line: {raw!r}")
            addr_text, prefix_text, asn_text = fields
            destinations.append(
                Destination(
                    addr=addr_to_int(addr_text),
                    prefix=parse_prefix(prefix_text),
                    asn=int(asn_text),
                )
            )
        return cls(destinations)


def build_hitlist(table: PrefixTable, seed: int) -> Hitlist:
    """Choose one stable representative address per advertised prefix."""
    destinations = []
    for entry in table:
        offset = stable_randint(
            _HOST_LOW, _HOST_HIGH, seed, "hitlist", entry.prefix.base
        )
        destinations.append(
            Destination(
                addr=entry.prefix.base + offset,
                prefix=entry.prefix,
                asn=entry.origin_asn,
            )
        )
    return Hitlist(destinations)
