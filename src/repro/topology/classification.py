"""CAIDA-style AS classification dataset.

Table 1 breaks every result down by AS type using "The CAIDA AS
Classification Dataset" [23]. The real dataset is derived from business
records and machine learning over BGP features; here the generator
already knows each AS's ground-truth type, and this module presents that
knowledge the way the paper consumed it — as a standalone dataset object
that can also be serialised to/from CAIDA's ``as2type``-like text format
(``asn|source|type``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.topology.autsys import ASGraph, ASType

__all__ = ["ASClassification", "TYPE_LABELS"]

#: CAIDA's as2type labels for each of our types.
TYPE_LABELS: Mapping[ASType, str] = {
    ASType.TRANSIT_ACCESS: "Transit/Access",
    ASType.ENTERPRISE: "Enterprise",
    ASType.CONTENT: "Content",
    ASType.UNKNOWN: "Unknown",
}

_LABEL_TO_TYPE: Dict[str, ASType] = {
    label.lower(): as_type for as_type, label in TYPE_LABELS.items()
}


class ASClassification:
    """Immutable ASN → type mapping with CAIDA-format round-tripping."""

    def __init__(self, mapping: Mapping[int, ASType]) -> None:
        self._mapping: Dict[int, ASType] = dict(mapping)

    @classmethod
    def from_graph(cls, graph: ASGraph) -> "ASClassification":
        """Extract the ground-truth classification from a topology."""
        return cls({a.asn: a.as_type for a in graph.systems()})

    def type_of(self, asn: int) -> ASType:
        """The type of ``asn``; unlisted ASes are Unknown, as in CAIDA."""
        return self._mapping.get(asn, ASType.UNKNOWN)

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, asn: object) -> bool:
        return asn in self._mapping

    def items(self) -> Iterator[Tuple[int, ASType]]:
        return iter(sorted(self._mapping.items()))

    def asns_of_type(self, as_type: ASType) -> Iterator[int]:
        for asn, found in sorted(self._mapping.items()):
            if found is as_type:
                yield asn

    def counts(self) -> Dict[ASType, int]:
        counts = {as_type: 0 for as_type in ASType}
        for as_type in self._mapping.values():
            counts[as_type] += 1
        return counts

    # -- as2type-style serialisation ----------------------------------------

    def to_lines(self, source: str = "repro_synth") -> Iterator[str]:
        """Render ``asn|source|type`` lines like CAIDA's as2type files."""
        for asn, as_type in sorted(self._mapping.items()):
            yield f"{asn}|{source}|{TYPE_LABELS[as_type]}"

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "ASClassification":
        """Parse ``asn|source|type`` lines; '#' comments are skipped."""
        mapping: Dict[int, ASType] = {}
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|")
            if len(fields) != 3:
                raise ValueError(f"malformed as2type line: {raw!r}")
            asn_text, _source, label = fields
            as_type = _LABEL_TO_TYPE.get(label.strip().lower())
            if as_type is None:
                raise ValueError(f"unknown AS type label: {label!r}")
            mapping[int(asn_text)] = as_type
        return cls(mapping)
