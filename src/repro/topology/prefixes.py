"""BGP prefix table — the synthetic stand-in for a RouteViews RIB.

The paper probed "1 IP address in each advertised BGP prefix collected
by RouteViews on September 24, 2016". Our equivalent: every AS owns a
/16 address block (``ASN << 16``), advertises some number of /24
prefixes out of the bottom of that block (how many depends on its type
— transit and content networks advertise far more address space than
enterprises, matching Table 1's IP-vs-AS ratios), and reserves the top
/24 of its block for router infrastructure addresses.

The table also round-trips a RouteViews-style ``prefix|asn`` text format
so examples can show a familiar artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.net.addr import Prefix, parse_prefix
from repro.topology.autsys import ASGraph, ASType
from repro.rng import stable_randint

__all__ = [
    "AdvertisedPrefix",
    "PrefixTable",
    "as_block",
    "infra_prefix",
    "build_prefix_table",
    "PREFIXES_PER_AS",
]

#: Inclusive (low, high) range of advertised /24 counts per AS type, at
#: scale 1.0. Tuned so the IP-count shares by type track Table 1
#: (transit/access ≈ 76% of probed addresses, content ≈ 9%, ...).
PREFIXES_PER_AS: Dict[ASType, Tuple[int, int]] = {
    ASType.TRANSIT_ACCESS: (8, 30),
    ASType.ENTERPRISE: (1, 4),
    ASType.CONTENT: (8, 30),
    ASType.UNKNOWN: (1, 6),
}

#: /24 index inside the AS block reserved for router infrastructure.
_INFRA_INDEX = 255

#: Maximum advertised /24s per AS — leaves the infrastructure /24 and
#: headroom below it untouched.
_MAX_ADVERTISED = 200


def as_block(asn: int) -> Prefix:
    """The /16 address block owned by ``asn``."""
    if not 1 <= asn <= 0xFFFF:
        raise ValueError(f"ASN outside the allocatable range: {asn}")
    return Prefix(asn << 16, 16)


def infra_prefix(asn: int) -> Prefix:
    """The /24 an AS uses for router interface addresses."""
    return Prefix((asn << 16) | (_INFRA_INDEX << 8), 24)


@dataclass(frozen=True)
class AdvertisedPrefix:
    """One advertised prefix: the RIB row the hitlist samples from."""

    prefix: Prefix
    origin_asn: int

    def __str__(self) -> str:
        return f"{self.prefix}|{self.origin_asn}"


class PrefixTable:
    """The advertised-prefix table (a flattened RIB)."""

    def __init__(self, entries: Iterable[AdvertisedPrefix]) -> None:
        self._entries: List[AdvertisedPrefix] = sorted(
            entries, key=lambda e: (e.prefix.base, e.prefix.length)
        )
        self._by_asn: Dict[int, List[AdvertisedPrefix]] = {}
        seen = set()
        for entry in self._entries:
            if entry.prefix in seen:
                raise ValueError(f"duplicate advertised prefix {entry.prefix}")
            seen.add(entry.prefix)
            self._by_asn.setdefault(entry.origin_asn, []).append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AdvertisedPrefix]:
        return iter(self._entries)

    def prefixes_of(self, asn: int) -> List[AdvertisedPrefix]:
        return list(self._by_asn.get(asn, []))

    def origin_asns(self) -> List[int]:
        return sorted(self._by_asn)

    def origin_of(self, prefix: Prefix) -> Optional[int]:
        for entry in self._by_asn.get(prefix.base >> 16, []):
            if entry.prefix == prefix:
                return entry.origin_asn
        return None

    # -- RouteViews-style serialisation -------------------------------------

    def to_lines(self) -> Iterator[str]:
        for entry in self._entries:
            yield str(entry)

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "PrefixTable":
        entries = []
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            prefix_text, _sep, asn_text = line.partition("|")
            if not asn_text:
                raise ValueError(f"malformed prefix line: {raw!r}")
            entries.append(
                AdvertisedPrefix(parse_prefix(prefix_text), int(asn_text))
            )
        return cls(entries)


def build_prefix_table(
    graph: ASGraph, seed: int, prefix_scale: float = 1.0
) -> PrefixTable:
    """Advertise /24s for every AS in ``graph``.

    ``prefix_scale`` shrinks or grows per-AS counts so small test
    scenarios do not drown in destinations; every AS always advertises
    at least one prefix (an AS with no address space would never appear
    in the study at all).
    """
    if prefix_scale <= 0:
        raise ValueError(f"prefix_scale must be positive: {prefix_scale}")
    entries = []
    for asn in graph.asns():
        low, high = PREFIXES_PER_AS[graph[asn].as_type]
        drawn = stable_randint(low, high, seed, "prefix-count", asn)
        count = max(1, min(_MAX_ADVERTISED, round(drawn * prefix_scale)))
        block = as_block(asn)
        for index in range(count):
            entries.append(
                AdvertisedPrefix(
                    Prefix(block.base + (index << 8), 24), asn
                )
            )
    return PrefixTable(entries)
