"""Valley-free (Gao–Rexford) interdomain route computation.

BGP routes are modelled with the standard policy abstraction:

* an AS prefers routes learned from customers over routes learned from
  peers over routes learned from providers (money flows downhill);
* it breaks ties by shortest AS path, then lowest next-hop ASN (a
  deterministic stand-in for BGP's arbitrary final tie-breakers);
* it exports customer routes to everyone, but peer/provider routes only
  to customers — which is exactly what makes every usable path
  *valley-free*: zero or more customer→provider hops, at most one peer
  hop, then zero or more provider→customer hops.

Routes to a destination AS are computed for every source at once with
the classic three-phase sweep (customer BFS up, one peer step sideways,
provider Dijkstra down), and the resulting routing tree is cached, so
asking for many sources' paths to the same destination is cheap.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional

from repro.obs.metrics import REGISTRY
from repro.topology.autsys import ASGraph

__all__ = ["RouteKind", "RouteInfo", "RoutingSystem"]

# Route preference, higher is better (Gao–Rexford).
KIND_CUSTOMER = 3
KIND_PEER = 2
KIND_PROVIDER = 1


class RouteKind:
    """Symbolic names for route-learning relationships."""

    CUSTOMER = KIND_CUSTOMER
    PEER = KIND_PEER
    PROVIDER = KIND_PROVIDER


class RouteInfo(NamedTuple):
    """One AS's selected route toward a destination."""

    kind: int  # KIND_* preference class
    length: int  # AS-path length in AS hops (dest itself: 0)
    next_hop: Optional[int]  # neighbour toward dest; None at dest


class RoutingSystem:
    """Computes and caches valley-free routing trees over an ASGraph."""

    def __init__(self, graph: ASGraph, cache_size: int = 4096) -> None:
        self._graph = graph
        self._cache_size = cache_size
        #: True LRU: most-recently-used trees live at the right end.
        self._trees: "OrderedDict[int, Dict[int, RouteInfo]]" = OrderedDict()
        lookups = REGISTRY.counter(
            "routing_tree_cache_lookups_total",
            "Routing-tree LRU cache lookups, by result.",
            ("result",),
        )
        self._cache_hits = lookups.labels("hit")
        self._cache_misses = lookups.labels("miss")
        self._cache_evictions = REGISTRY.counter(
            "routing_tree_cache_evictions_total",
            "Routing trees evicted from the LRU cache.",
        ).labels()

    @property
    def graph(self) -> ASGraph:
        return self._graph

    @property
    def cache_len(self) -> int:
        """Number of routing trees currently cached."""
        return len(self._trees)

    # -- routing trees -----------------------------------------------------

    def routing_tree(self, dest: int) -> Dict[int, RouteInfo]:
        """Every AS's selected route toward ``dest`` (absent = no route)."""
        cached = self._trees.get(dest)
        if cached is not None:
            self._cache_hits.inc()
            self._trees.move_to_end(dest)
            return cached
        self._cache_misses.inc()
        tree = self._compute_tree(dest)
        self._trees[dest] = tree
        if len(self._trees) > self._cache_size:
            self._trees.popitem(last=False)
            self._cache_evictions.inc()
        return tree

    def _compute_tree(self, dest: int) -> Dict[int, RouteInfo]:
        graph = self._graph
        if dest not in graph:
            raise KeyError(f"unknown destination ASN {dest}")
        routes: Dict[int, RouteInfo] = {
            dest: RouteInfo(KIND_CUSTOMER, 0, None)
        }

        # Phase 1 — customer routes: the destination's reachability climbs
        # provider links, so every AS on an all-uphill path learns a
        # customer route. Level-synchronous BFS keeps lengths minimal and
        # lets ties resolve to the lowest next-hop ASN.
        frontier = [dest]
        length = 0
        while frontier:
            length += 1
            candidates: Dict[int, int] = {}
            for asn in frontier:
                for provider in graph.providers_of(asn):
                    if provider in routes:
                        continue
                    best = candidates.get(provider)
                    if best is None or asn < best:
                        candidates[provider] = asn
            for provider, via in candidates.items():
                routes[provider] = RouteInfo(KIND_CUSTOMER, length, via)
            frontier = sorted(candidates)

        # Phase 2 — peer routes: one sideways hop from any AS holding a
        # customer route (or the destination itself). Customer routes
        # always win, so only routeless ASes adopt.
        peer_routes: Dict[int, RouteInfo] = {}
        for asn, info in routes.items():
            for peer in graph.peers_of(asn):
                if peer in routes:
                    continue
                candidate = RouteInfo(KIND_PEER, info.length + 1, asn)
                best = peer_routes.get(peer)
                if best is None or (candidate.length, candidate.next_hop) < (
                    best.length,
                    best.next_hop,
                ):
                    peer_routes[peer] = candidate
        routes.update(peer_routes)

        # Phase 3 — provider routes: every routed AS exports its selected
        # route to customers, recursively. Seed lengths differ, so this
        # is a unit-weight Dijkstra down customer links.
        heap: List[tuple] = [
            (info.length, asn) for asn, info in routes.items()
        ]
        heapq.heapify(heap)
        settled: Dict[int, int] = {}
        while heap:
            length, asn = heapq.heappop(heap)
            if settled.get(asn, 1 << 30) <= length:
                continue
            settled[asn] = length
            for customer in sorted(graph.customers_of(asn)):
                if customer in routes and routes[customer].kind > KIND_PROVIDER:
                    continue
                candidate = RouteInfo(KIND_PROVIDER, length + 1, asn)
                best = routes.get(customer)
                if best is None or (candidate.length, candidate.next_hop) < (
                    best.length,
                    best.next_hop,
                ):
                    routes[customer] = candidate
                    heapq.heappush(heap, (candidate.length, customer))
        return routes

    # -- paths ---------------------------------------------------------

    def as_path(self, src: int, dest: int) -> Optional[List[int]]:
        """The AS-level path from ``src`` to ``dest``, or None.

        The returned list starts with ``src`` and ends with ``dest``;
        a path from an AS to itself is ``[src]``.
        """
        if src == dest:
            return [src]
        tree = self.routing_tree(dest)
        info = tree.get(src)
        if info is None:
            return None
        path = [src]
        current = src
        while current != dest:
            next_hop = tree[current].next_hop
            if next_hop is None:  # pragma: no cover - defensive
                return None
            path.append(next_hop)
            current = next_hop
            if len(path) > len(self._graph) + 1:  # pragma: no cover
                raise RuntimeError("routing loop detected")
        return path

    def reachable_from(self, src: int, dest: int) -> bool:
        if src == dest:
            return True
        return src in self.routing_tree(dest)

    def path_length(self, src: int, dest: int) -> Optional[int]:
        """AS-hop count from ``src`` to ``dest`` (0 when equal)."""
        if src == dest:
            return 0
        info = self.routing_tree(dest).get(src)
        return None if info is None else info.length

    def clear_cache(self) -> None:
        """Drop every cached routing tree (call after graph mutation)."""
        self._trees.clear()
