"""Valley-free (Gao–Rexford) interdomain route computation.

BGP routes are modelled with the standard policy abstraction:

* an AS prefers routes learned from customers over routes learned from
  peers over routes learned from providers (money flows downhill);
* it breaks ties by shortest AS path, then lowest next-hop ASN (a
  deterministic stand-in for BGP's arbitrary final tie-breakers);
* it exports customer routes to everyone, but peer/provider routes only
  to customers — which is exactly what makes every usable path
  *valley-free*: zero or more customer→provider hops, at most one peer
  hop, then zero or more provider→customer hops.

Routes to a destination AS are computed for every source at once with
the classic three-phase sweep (customer BFS up, one peer step sideways,
provider Dijkstra down), and the resulting routing tree is cached, so
asking for many sources' paths to the same destination is cheap.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional

from repro.obs.metrics import REGISTRY
from repro.topology.autsys import ASGraph

__all__ = ["RouteKind", "RouteInfo", "RoutingSystem"]

# Route preference, higher is better (Gao–Rexford).
KIND_CUSTOMER = 3
KIND_PEER = 2
KIND_PROVIDER = 1


class RouteKind:
    """Symbolic names for route-learning relationships."""

    CUSTOMER = KIND_CUSTOMER
    PEER = KIND_PEER
    PROVIDER = KIND_PROVIDER


class RouteInfo(NamedTuple):
    """One AS's selected route toward a destination."""

    kind: int  # KIND_* preference class
    length: int  # AS-path length in AS hops (dest itself: 0)
    next_hop: Optional[int]  # neighbour toward dest; None at dest


class RoutingSystem:
    """Computes and caches valley-free routing trees over an ASGraph."""

    def __init__(self, graph: ASGraph, cache_size: int = 4096) -> None:
        self._graph = graph
        self._cache_size = cache_size
        #: True LRU: most-recently-used trees live at the right end.
        self._trees: "OrderedDict[int, Dict[int, RouteInfo]]" = OrderedDict()
        lookups = REGISTRY.counter(
            "routing_tree_cache_lookups_total",
            "Routing-tree LRU cache lookups, by result.",
            ("result",),
        )
        self._cache_hits = lookups.labels("hit")
        self._cache_misses = lookups.labels("miss")
        self._cache_evictions = REGISTRY.counter(
            "routing_tree_cache_evictions_total",
            "Routing trees evicted from the LRU cache.",
        ).labels()
        #: Lazily-built adjacency snapshot: asn -> (providers, peers,
        #: sorted customers) as tuples. ``ASGraph``'s accessors copy
        #: into a fresh frozenset per call, which a tree compute hits
        #: thousands of times; snapshotting once per graph generation
        #: (dropped by ``clear_cache``) removes that from the loop.
        self._adj: Optional[Dict[int, tuple]] = None

    @property
    def graph(self) -> ASGraph:
        return self._graph

    @property
    def cache_len(self) -> int:
        """Number of routing trees currently cached."""
        return len(self._trees)

    # -- routing trees -----------------------------------------------------

    def routing_tree(self, dest: int) -> Dict[int, RouteInfo]:
        """Every AS's selected route toward ``dest`` (absent = no route)."""
        cached = self._trees.get(dest)
        if cached is not None:
            self._cache_hits.inc()
            self._trees.move_to_end(dest)
            return cached
        self._cache_misses.inc()
        tree = self._compute_tree(dest)
        self._trees[dest] = tree
        if len(self._trees) > self._cache_size:
            self._trees.popitem(last=False)
            self._cache_evictions.inc()
        return tree

    def _adjacency(self) -> Dict[int, tuple]:
        adj = self._adj
        if adj is None:
            graph = self._graph
            adj = {
                asn: (
                    tuple(graph.providers_of(asn)),
                    tuple(graph.peers_of(asn)),
                    tuple(sorted(graph.customers_of(asn))),
                )
                for asn in graph.asns()
            }
            self._adj = adj
        return adj

    def _compute_tree(self, dest: int) -> Dict[int, RouteInfo]:
        if dest not in self._graph:
            raise KeyError(f"unknown destination ASN {dest}")
        adj = self._adjacency()
        # ~n RouteInfo allocations per tree and a few comparisons per
        # edge make this the scenario-wide routing hot spot; building
        # the (still genuine) RouteInfo tuples via ``tuple.__new__``
        # skips the generated-constructor frame, and field access in
        # the loops uses indices instead of the namedtuple properties.
        mk = tuple.__new__
        routes: Dict[int, RouteInfo] = {
            dest: mk(RouteInfo, (KIND_CUSTOMER, 0, None))
        }

        # Phase 1 — customer routes: the destination's reachability climbs
        # provider links, so every AS on an all-uphill path learns a
        # customer route. Level-synchronous BFS keeps lengths minimal and
        # lets ties resolve to the lowest next-hop ASN.
        frontier = [dest]
        length = 0
        while frontier:
            length += 1
            candidates: Dict[int, int] = {}
            for asn in frontier:
                for provider in adj[asn][0]:
                    if provider in routes:
                        continue
                    best = candidates.get(provider)
                    if best is None or asn < best:
                        candidates[provider] = asn
            for provider, via in candidates.items():
                routes[provider] = mk(
                    RouteInfo, (KIND_CUSTOMER, length, via)
                )
            frontier = sorted(candidates)

        # Phase 2 — peer routes: one sideways hop from any AS holding a
        # customer route (or the destination itself). Customer routes
        # always win, so only routeless ASes adopt.
        peer_routes: Dict[int, RouteInfo] = {}
        for asn, info in routes.items():
            length = info[1] + 1
            for peer in adj[asn][1]:
                if peer in routes:
                    continue
                best = peer_routes.get(peer)
                # Unrolled (length, asn) < (best.length, best.next_hop)
                # — peer routes always carry an integer next hop.
                if best is None or length < best[1] or (
                    length == best[1] and asn < best[2]
                ):
                    peer_routes[peer] = mk(
                        RouteInfo, (KIND_PEER, length, asn)
                    )
        routes.update(peer_routes)

        # Phase 3 — provider routes: every routed AS exports its selected
        # route to customers, recursively. Seed lengths differ, so this
        # is a unit-weight Dijkstra down customer links — and with unit
        # weights a bucket queue visits nodes in exactly the order a
        # ``(length, asn)`` heap would: lengths ascending, ASNs
        # ascending within a length (relaxations from bucket ``l`` only
        # ever land in bucket ``l + 1``, so each bucket is complete
        # before it is processed). Same visit order, same tie-breaks,
        # no per-edge heap churn.
        buckets: Dict[int, List[int]] = {}
        for asn, info in routes.items():
            buckets.setdefault(info[1], []).append(asn)
        settled: Dict[int, int] = {}
        routes_get = routes.get
        settled_get = settled.get
        length = 0
        while buckets:
            group = buckets.pop(length, None)
            nxt = length + 1
            if group is not None:
                group.sort()
                for asn in group:
                    if settled_get(asn, 1 << 30) <= length:
                        continue
                    settled[asn] = length
                    for customer in adj[asn][2]:
                        best = routes_get(customer)
                        # Unrolled: skip unless the candidate (nxt, asn)
                        # strictly beats a provider route (customer and
                        # peer routes always win). Provider routes carry
                        # an integer next hop, so best[2] is comparable.
                        if best is not None and (
                            best[0] > KIND_PROVIDER
                            or best[1] < nxt
                            or (best[1] == nxt and best[2] <= asn)
                        ):
                            continue
                        routes[customer] = mk(
                            RouteInfo, (KIND_PROVIDER, nxt, asn)
                        )
                        buckets.setdefault(nxt, []).append(customer)
            length = nxt
        return routes

    # -- paths ---------------------------------------------------------

    def as_path(self, src: int, dest: int) -> Optional[List[int]]:
        """The AS-level path from ``src`` to ``dest``, or None.

        The returned list starts with ``src`` and ends with ``dest``;
        a path from an AS to itself is ``[src]``.
        """
        if src == dest:
            return [src]
        tree = self.routing_tree(dest)
        info = tree.get(src)
        if info is None:
            return None
        path = [src]
        current = src
        while current != dest:
            next_hop = tree[current].next_hop
            if next_hop is None:  # pragma: no cover - defensive
                return None
            path.append(next_hop)
            current = next_hop
            if len(path) > len(self._graph) + 1:  # pragma: no cover
                raise RuntimeError("routing loop detected")
        return path

    def reachable_from(self, src: int, dest: int) -> bool:
        if src == dest:
            return True
        return src in self.routing_tree(dest)

    def path_length(self, src: int, dest: int) -> Optional[int]:
        """AS-hop count from ``src`` to ``dest`` (0 when equal)."""
        if src == dest:
            return 0
        info = self.routing_tree(dest).get(src)
        return None if info is None else info.length

    def clear_cache(self) -> None:
        """Drop every cached routing tree (call after graph mutation)."""
        self._trees.clear()
        self._adj = None
