"""Seeded Internet topology generator.

Produces the AS-level graph the whole study runs against. Shape knobs
mirror the forces the paper says changed between 2011 and 2016:

* a tiered transit hierarchy (a tier-1 clique, regional tier-2 transit,
  and an edge of access/enterprise/content/unknown stubs);
* a ``flattening`` knob in [0, 1] scaling all peering density — tier-2
  to tier-2 peering, content-to-access peering, and IXP meshes — which
  is exactly the "flattening Internet" trend §2 and §3.4 discuss;
* colocation-facility membership (where M-Lab-style vantage points
  live) and university stubs (where PlanetLab-style ones live, with
  extra campus hops);
* designated cloud ASes with very rich peering, modelling the GCE /
  EC2 / Softlayer comparison of §3.6;
* options-filtering policy concentrated at edge ASes — the 2005
  finding that 91% of options drops happen in the source or
  destination AS [8] — plus rare in-core filters;
* per-AS RR stamping fractions: almost every AS stamps always, a few
  stamp sometimes, and a couple never (§3.5's audit target).

All randomness is keyed by ``(seed, entity)`` via :mod:`repro.rng`, so
identical parameters always regenerate an identical Internet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.topology.autsys import ASGraph, ASType, AutonomousSystem, Tier
from repro.rng import stable_rng, stable_uniform

__all__ = ["TopologyParams", "GeneratedTopology", "generate_topology"]


@dataclass(frozen=True)
class TopologyParams:
    """All the knobs; defaults describe the 2016-era study Internet."""

    seed: int = 2016
    num_tier1: int = 8
    num_tier2: int = 60
    #: Regional (tier-3) transit ASes between tier-2 and the edge —
    #: the extra hierarchy layer of the pre-flattening Internet. The
    #: 2016 default is zero; the 2011 era preset enables it.
    num_tier3: int = 0
    #: Probability an edge AS buys transit from a tier-3 regional
    #: instead of directly from a tier-2 (when tier-3s exist).
    edge_via_tier3_prob: float = 0.75
    num_edge: int = 1100
    num_clouds: int = 3

    #: Edge-AS type mix, matching Table 1's AS-count shares.
    edge_type_weights: Tuple[Tuple[ASType, float], ...] = (
        (ASType.ENTERPRISE, 0.48),
        (ASType.TRANSIT_ACCESS, 0.37),
        (ASType.CONTENT, 0.043),
        (ASType.UNKNOWN, 0.107),
    )

    #: Master peering-density knob (≈0.15 in 2011, ≈0.65 in 2016).
    flattening: float = 0.65
    tier2_peer_prob: float = 0.30
    #: Colocated tier-2s share facilities and peer much more densely —
    #: the overlap that makes the paper's VP sites largely redundant.
    colo_mesh_prob: float = 0.85
    content_peer_mean: float = 3.0
    #: Universities peer with a few transit networks via gigapops.
    university_peer_mean: float = 6.0
    ixp_count: int = 10
    ixp_mean_members: int = 22
    ixp_peer_prob: float = 0.5

    #: Cloud peering probabilities, per cloud rank (rank 0 = richest,
    #: the GCE-like network), scaled by ``flattening``. Clouds peer
    #: heavily with transit and eyeball (access) networks and more
    #: selectively with other edges — the §3.6 "flattening" effect.
    cloud_tier2_peer: Tuple[float, ...] = (0.95, 0.8, 0.65)
    cloud_access_peer: Tuple[float, ...] = (0.9, 0.55, 0.4)
    cloud_other_peer: Tuple[float, ...] = (0.35, 0.18, 0.12)

    colo_fraction_tier2: float = 0.55
    university_fraction_access: float = 0.30
    #: Extra router tiers inside campus networks (2 in the 2011 era,
    #: when campuses were deeper and CDNs had not pulled content in).
    university_bias: int = 1
    multihome_prob: float = 0.35

    #: Probability an AS of each type filters all options packets.
    filter_prob: Tuple[Tuple[ASType, float], ...] = (
        (ASType.TRANSIT_ACCESS, 0.09),
        (ASType.ENTERPRISE, 0.22),
        (ASType.CONTENT, 0.09),
        (ASType.UNKNOWN, 0.15),
    )
    filter_core_prob: float = 0.01

    never_stamp_count: int = 2
    sometimes_stamp_fraction: float = 0.08

    def __post_init__(self) -> None:
        if self.num_tier1 < 2:
            raise ValueError("need at least two tier-1 ASes")
        if not 0.0 <= self.flattening <= 1.0:
            raise ValueError("flattening must be in [0, 1]")
        if self.num_clouds > len(self.cloud_tier2_peer):
            raise ValueError("missing cloud peering parameters")

    def filter_prob_of(self, as_type: ASType) -> float:
        for found, prob in self.filter_prob:
            if found is as_type:
                return prob
        return 0.0


@dataclass
class GeneratedTopology:
    """The generator's output: the graph plus role metadata."""

    graph: ASGraph
    params: TopologyParams
    tier1: List[int] = field(default_factory=list)
    tier2: List[int] = field(default_factory=list)
    tier3: List[int] = field(default_factory=list)
    edges: List[int] = field(default_factory=list)
    clouds: List[int] = field(default_factory=list)
    colo_asns: List[int] = field(default_factory=list)
    university_asns: List[int] = field(default_factory=list)
    ixps: List[List[int]] = field(default_factory=list)

    @property
    def seed(self) -> int:
        return self.params.seed


def _pick_type(params: TopologyParams, asn: int) -> ASType:
    draw = stable_uniform(params.seed, "edge-type", asn)
    accumulated = 0.0
    total = sum(weight for _t, weight in params.edge_type_weights)
    for as_type, weight in params.edge_type_weights:
        accumulated += weight / total
        if draw < accumulated:
            return as_type
    return params.edge_type_weights[-1][0]


def generate_topology(params: TopologyParams) -> GeneratedTopology:
    """Build the whole AS-level Internet described by ``params``."""
    graph = ASGraph()
    out = GeneratedTopology(graph=graph, params=params)
    seed = params.seed

    next_asn = 1
    for _ in range(params.num_tier1):
        graph.add_as(
            AutonomousSystem(
                next_asn, ASType.TRANSIT_ACCESS, Tier.TIER1, colo=True
            )
        )
        out.tier1.append(next_asn)
        next_asn += 1
    for _ in range(params.num_tier2):
        colo = (
            stable_uniform(seed, "colo", next_asn)
            < params.colo_fraction_tier2
        )
        graph.add_as(
            AutonomousSystem(
                next_asn, ASType.TRANSIT_ACCESS, Tier.TIER2, colo=colo
            )
        )
        out.tier2.append(next_asn)
        if colo:
            out.colo_asns.append(next_asn)
        next_asn += 1
    for _ in range(params.num_tier3):
        graph.add_as(
            AutonomousSystem(next_asn, ASType.TRANSIT_ACCESS, Tier.EDGE)
        )
        out.tier3.append(next_asn)
        next_asn += 1
    for rank in range(params.num_clouds):
        graph.add_as(
            AutonomousSystem(next_asn, ASType.CONTENT, Tier.EDGE, colo=True)
        )
        out.clouds.append(next_asn)
        next_asn += 1
    for _ in range(params.num_edge):
        as_type = _pick_type(params, next_asn)
        university = (
            as_type is ASType.TRANSIT_ACCESS
            and stable_uniform(seed, "university", next_asn)
            < params.university_fraction_access
        )
        # Campus networks put extra router tiers in front of hosts.
        bias = params.university_bias if university else 0
        graph.add_as(
            AutonomousSystem(
                next_asn, as_type, Tier.EDGE, internal_hop_bias=bias
            )
        )
        out.edges.append(next_asn)
        if university:
            out.university_asns.append(next_asn)
        next_asn += 1

    _wire_transit(graph, out, params)
    _wire_peering(graph, out, params)
    _assign_policies(graph, out, params)
    graph.validate()
    return out


def _wire_transit(
    graph: ASGraph, out: GeneratedTopology, params: TopologyParams
) -> None:
    """Customer→provider edges: the hierarchy's backbone."""
    seed = params.seed
    # Tier-1 clique.
    for index, left in enumerate(out.tier1):
        for right in out.tier1[index + 1 :]:
            graph.add_peering(left, right)
    # Tier-2: one or two tier-1 providers each.
    for asn in out.tier2:
        rng = stable_rng(seed, "t2-providers", asn)
        count = 1 + (rng.random() < 0.5)
        for provider in rng.sample(out.tier1, count):
            graph.add_customer_provider(asn, provider)
    # Clouds: two tier-1 providers each (transit of last resort).
    for asn in out.clouds:
        rng = stable_rng(seed, "cloud-providers", asn)
        for provider in rng.sample(out.tier1, 2):
            graph.add_customer_provider(asn, provider)
    # Tier-3 regionals (2011 era): one or two tier-2 providers each.
    for asn in out.tier3:
        rng = stable_rng(seed, "t3-providers", asn)
        count = 1 + (rng.random() < 0.5)
        for provider in rng.sample(out.tier2, min(count, len(out.tier2))):
            graph.add_customer_provider(asn, provider)
    # Edges: one or two providers — tier-3 regionals when that layer
    # exists, else tier-2 directly; rare direct tier-1 uplinks.
    for asn in out.edges:
        rng = stable_rng(seed, "edge-providers", asn)
        count = 1 + (rng.random() < params.multihome_prob)
        if rng.random() < 0.05:
            pool = out.tier1
        elif out.tier3 and rng.random() < params.edge_via_tier3_prob:
            pool = out.tier3
        else:
            pool = out.tier2
        for provider in rng.sample(pool, min(count, len(pool))):
            graph.add_customer_provider(asn, provider)


def _maybe_peer(graph: ASGraph, left: int, right: int) -> bool:
    """Add a peering edge unless one (or a transit edge) already exists."""
    if left == right or graph.relationship(left, right) is not None:
        return False
    graph.add_peering(left, right)
    return True


def _wire_peering(
    graph: ASGraph, out: GeneratedTopology, params: TopologyParams
) -> None:
    """Settlement-free edges: where the flattening knob acts."""
    seed = params.seed
    flat = params.flattening
    # Tier-2 mesh: dense among colo members, sparser elsewhere.
    colo = set(out.colo_asns)
    for index, left in enumerate(out.tier2):
        for right in out.tier2[index + 1 :]:
            prob = (
                params.colo_mesh_prob
                if left in colo and right in colo
                else params.tier2_peer_prob
            )
            if stable_uniform(seed, "t2-peer", left, right) < prob * flat:
                _maybe_peer(graph, left, right)
    # University gigapop peering with (preferentially colo) tier-2s.
    for asn in out.university_asns:
        rng = stable_rng(seed, "uni-peers", asn)
        count = round(rng.random() * 2 * params.university_peer_mean * flat)
        pool = out.colo_asns or out.tier2
        for peer in rng.sample(pool, min(count, len(pool))):
            _maybe_peer(graph, asn, peer)
    # Clouds peer very broadly (the §3.6 effect).
    access_edges = [
        asn
        for asn in out.edges
        if graph[asn].as_type is ASType.TRANSIT_ACCESS
    ]
    # Cloud probabilities are taken as-is (not scaled by the global
    # flattening knob): era presets set them explicitly, and by 2016
    # the hyperscalers peered with nearly every eyeball network.
    for rank, cloud in enumerate(out.clouds):
        t2_prob = params.cloud_tier2_peer[rank]
        access_prob = params.cloud_access_peer[rank]
        other_prob = params.cloud_other_peer[rank]
        for asn in out.tier2:
            if stable_uniform(seed, "cloud-t2", cloud, asn) < t2_prob:
                _maybe_peer(graph, cloud, asn)
        for asn in out.edges:
            prob = (
                access_prob
                if graph[asn].as_type is ASType.TRANSIT_ACCESS
                else other_prob
            )
            if stable_uniform(seed, "cloud-edge", cloud, asn) < prob:
                _maybe_peer(graph, cloud, asn)
    # Ordinary content networks pick up a few peers.
    for asn in out.edges:
        if graph[asn].as_type is not ASType.CONTENT:
            continue
        rng = stable_rng(seed, "content-peers", asn)
        count = round(rng.random() * 2 * params.content_peer_mean * flat)
        for peer in rng.sample(out.tier2, min(count, len(out.tier2))):
            _maybe_peer(graph, asn, peer)
    # IXPs: facility membership plus a partial mesh among members.
    candidates = out.tier2 + out.clouds + access_edges
    for ixp_index in range(params.ixp_count):
        rng = stable_rng(seed, "ixp", ixp_index)
        size = max(3, round(rng.gauss(params.ixp_mean_members, 5)))
        members = rng.sample(candidates, min(size, len(candidates)))
        out.ixps.append(sorted(members))
        for index, left in enumerate(members):
            for right in members[index + 1 :]:
                if rng.random() < params.ixp_peer_prob * flat:
                    _maybe_peer(graph, left, right)


def _assign_policies(
    graph: ASGraph, out: GeneratedTopology, params: TopologyParams
) -> None:
    """Options filtering and RR stamping policy, per AS."""
    seed = params.seed
    for autsys in graph.systems():
        if autsys.tier is Tier.TIER2 or autsys.asn in out.tier3:
            prob = params.filter_core_prob
        elif autsys.tier is Tier.EDGE and autsys.asn not in out.clouds:
            prob = params.filter_prob_of(autsys.as_type)
        else:
            prob = 0.0  # tier-1 and clouds never filter in our model
        autsys.filters_options = (
            stable_uniform(seed, "filters", autsys.asn) < prob
        )

    # §3.5: a couple of ASes never stamp; a small set sometimes stamp.
    # Only transit (tier-2/3) networks qualify: a stub's stamping
    # policy is unobservable to the traceroute-vs-RR audit since
    # nothing transits it.
    stampable = [
        asn
        for asn in out.tier2 + out.tier3
        if not graph[asn].filters_options
    ]
    rng = stable_rng(seed, "stamping")
    never = rng.sample(
        stampable, min(params.never_stamp_count, len(stampable))
    )
    remaining = [asn for asn in stampable if asn not in never]
    sometimes_count = round(len(stampable) * params.sometimes_stamp_fraction)
    sometimes = rng.sample(remaining, min(sometimes_count, len(remaining)))
    for asn in never:
        graph[asn].stamp_fraction = 0.0
    for asn in sometimes:
        # Low enough that an entire traversal (2-4 routers) sometimes
        # goes unstamped — the §3.5 "usually seen in both, but not
        # always" signature.
        graph[asn].stamp_fraction = 0.15 + 0.55 * rng.random()
