"""Autonomous systems and their business relationships.

The AS graph follows the standard Gao–Rexford model: edges are either
customer→provider or peer↔peer, and routing policy (``repro.topology.
routing``) only uses valley-free paths. The graph also carries the
per-AS attributes the paper's measurements depend on: CAIDA-style type
labels (Table 1's columns), options-filtering policy (why RR probes go
unanswered), and stamping policy (§3.5's never/sometimes/always split).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

__all__ = [
    "ASType",
    "Tier",
    "RelKind",
    "AutonomousSystem",
    "ASGraph",
]


class ASType(enum.Enum):
    """CAIDA-style AS classification, mirroring Table 1's columns."""

    TRANSIT_ACCESS = "transit/access"
    ENTERPRISE = "enterprise"
    CONTENT = "content"
    UNKNOWN = "unknown"


class Tier(enum.IntEnum):
    """Position in the transit hierarchy (1 = clique at the top)."""

    TIER1 = 1
    TIER2 = 2
    EDGE = 3


class RelKind(enum.Enum):
    """Business relationship of an edge, seen from the first AS."""

    CUSTOMER = "customer"  # the neighbour is our customer
    PROVIDER = "provider"  # the neighbour is our provider
    PEER = "peer"


@dataclass
class AutonomousSystem:
    """One AS: number, classification, and measurement-relevant policy.

    Policy attributes (all set by the generator):

    * ``filters_options`` — drops any packet carrying IP options that it
      originates, receives, or transits. The 2005 study found 91% of
      options drops happen at the source or destination AS [8], so the
      generator assigns this mostly to edge ASes.
    * ``stamp_fraction`` — fraction of this AS's routers that record
      their address in RR packets they forward; 1.0 everywhere except
      the few "never stamp"/"sometimes stamp" ASes §3.5 looks for.
    * ``hosts_ixp`` / ``colo`` — whether the AS is present at a colo /
      IXP facility; M-Lab-style vantage points live in such ASes.
    """

    asn: int
    as_type: ASType
    tier: Tier
    filters_options: bool = False
    stamp_fraction: float = 1.0
    colo: bool = False
    internal_hop_bias: int = 0  # extra intra-AS router hops (universities)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn}")
        if not 0.0 <= self.stamp_fraction <= 1.0:
            raise ValueError(
                f"stamp_fraction must be in [0, 1], got {self.stamp_fraction}"
            )

    @property
    def never_stamps(self) -> bool:
        return self.stamp_fraction == 0.0

    def __hash__(self) -> int:
        return hash(self.asn)


class ASGraph:
    """The AS-level topology: nodes plus typed relationship edges."""

    def __init__(self) -> None:
        self._systems: Dict[int, AutonomousSystem] = {}
        self._providers: Dict[int, Set[int]] = {}
        self._customers: Dict[int, Set[int]] = {}
        self._peers: Dict[int, Set[int]] = {}

    # -- construction ------------------------------------------------------

    def add_as(self, autsys: AutonomousSystem) -> None:
        if autsys.asn in self._systems:
            raise ValueError(f"duplicate ASN {autsys.asn}")
        self._systems[autsys.asn] = autsys
        self._providers[autsys.asn] = set()
        self._customers[autsys.asn] = set()
        self._peers[autsys.asn] = set()

    def add_customer_provider(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        self._require(customer)
        self._require(provider)
        if customer == provider:
            raise ValueError("an AS cannot be its own provider")
        if provider in self._peers[customer]:
            raise ValueError(
                f"AS{customer} and AS{provider} already peer"
            )
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)

    def add_peering(self, left: int, right: int) -> None:
        """Record a settlement-free peering between ``left`` and ``right``."""
        self._require(left)
        self._require(right)
        if left == right:
            raise ValueError("an AS cannot peer with itself")
        if right in self._providers[left] or right in self._customers[left]:
            raise ValueError(
                f"AS{left} and AS{right} already have a transit relationship"
            )
        self._peers[left].add(right)
        self._peers[right].add(left)

    def _require(self, asn: int) -> None:
        if asn not in self._systems:
            raise KeyError(f"unknown ASN {asn}")

    # -- queries -----------------------------------------------------------

    def __contains__(self, asn: object) -> bool:
        return asn in self._systems

    def __len__(self) -> int:
        return len(self._systems)

    def __getitem__(self, asn: int) -> AutonomousSystem:
        return self._systems[asn]

    def systems(self) -> Iterator[AutonomousSystem]:
        return iter(self._systems.values())

    def asns(self) -> List[int]:
        return sorted(self._systems)

    def providers_of(self, asn: int) -> FrozenSet[int]:
        return frozenset(self._providers[asn])

    def customers_of(self, asn: int) -> FrozenSet[int]:
        return frozenset(self._customers[asn])

    def peers_of(self, asn: int) -> FrozenSet[int]:
        return frozenset(self._peers[asn])

    def neighbors_of(self, asn: int) -> FrozenSet[int]:
        return frozenset(
            self._providers[asn] | self._customers[asn] | self._peers[asn]
        )

    def relationship(self, left: int, right: int) -> Optional[RelKind]:
        """The relationship of ``right`` as seen from ``left``, if any."""
        if right in self._customers[left]:
            return RelKind.CUSTOMER
        if right in self._providers[left]:
            return RelKind.PROVIDER
        if right in self._peers[left]:
            return RelKind.PEER
        return None

    def edges(self) -> Iterator[Tuple[int, int, RelKind]]:
        """Iterate unique edges as ``(a, b, relationship-of-b-seen-from-a)``.

        Transit edges are reported once, customer side first; peering
        edges once with ``a < b``.
        """
        for provider in sorted(self._customers):
            for customer in sorted(self._customers[provider]):
                yield customer, provider, RelKind.PROVIDER
        for left in sorted(self._peers):
            for right in sorted(self._peers[left]):
                if left < right:
                    yield left, right, RelKind.PEER

    def degree(self, asn: int) -> int:
        return len(self.neighbors_of(asn))

    def stub_asns(self) -> List[int]:
        """ASes with no customers (the Internet's edge)."""
        return [asn for asn in self.asns() if not self._customers[asn]]

    def by_type(self, as_type: ASType) -> List[int]:
        return [
            autsys.asn
            for autsys in self._systems.values()
            if autsys.as_type is as_type
        ]

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        for asn in self._systems:
            for provider in self._providers[asn]:
                if asn not in self._customers[provider]:
                    raise ValueError(
                        f"asymmetric transit edge AS{asn}->AS{provider}"
                    )
            for peer in self._peers[asn]:
                if asn not in self._peers[peer]:
                    raise ValueError(
                        f"asymmetric peering AS{asn}<->AS{peer}"
                    )
            overlap = (
                self._providers[asn] & self._customers[asn]
                | self._providers[asn] & self._peers[asn]
                | self._customers[asn] & self._peers[asn]
            )
            if overlap:
                raise ValueError(
                    f"AS{asn} has conflicting relationships with {overlap}"
                )
