"""Topology metrics: sanity-check the generated Internet's shape.

The study's conclusions are statements about Internet *structure*
(flattening, colo density, hierarchy depth), so a released generator
needs a way to show what it built. These metrics are what DESIGN.md's
calibration targets are checked against, and what
``examples``/tests use to demonstrate that an era knob actually
changed the structure it claims to change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.topology.autsys import ASType, RelKind, Tier
from repro.topology.generator import GeneratedTopology
from repro.topology.routing import RoutingSystem

__all__ = ["TopologyMetrics", "compute_metrics", "path_length_histogram"]


@dataclass
class TopologyMetrics:
    """Aggregate structural facts about one generated Internet."""

    as_count: int = 0
    transit_edge_count: int = 0
    peering_edge_count: int = 0
    type_counts: Dict[ASType, int] = field(default_factory=dict)
    tier_counts: Dict[Tier, int] = field(default_factory=dict)
    stub_fraction: float = 0.0
    multihomed_fraction: float = 0.0
    filtering_fraction: float = 0.0
    mean_degree: float = 0.0
    max_degree: int = 0
    colo_count: int = 0
    university_count: int = 0

    @property
    def peering_ratio(self) -> float:
        """Peering edges per transit edge — the flattening signature."""
        if self.transit_edge_count == 0:
            return 0.0
        return self.peering_edge_count / self.transit_edge_count

    def render(self) -> str:
        types = ", ".join(
            f"{as_type.value}={count}"
            for as_type, count in sorted(
                self.type_counts.items(), key=lambda kv: kv[0].value
            )
        )
        return (
            f"{self.as_count} ASes ({types}); "
            f"{self.transit_edge_count} transit + "
            f"{self.peering_edge_count} peering edges "
            f"(peering ratio {self.peering_ratio:.2f}); "
            f"{self.stub_fraction:.0%} stubs, "
            f"{self.multihomed_fraction:.0%} multihomed, "
            f"{self.filtering_fraction:.0%} filter options; "
            f"mean degree {self.mean_degree:.1f} (max {self.max_degree}); "
            f"{self.colo_count} colo ASes, "
            f"{self.university_count} universities"
        )


def compute_metrics(topo: GeneratedTopology) -> TopologyMetrics:
    """All structural metrics of a generated topology."""
    graph = topo.graph
    metrics = TopologyMetrics(as_count=len(graph))
    for _left, _right, kind in graph.edges():
        if kind is RelKind.PEER:
            metrics.peering_edge_count += 1
        else:
            metrics.transit_edge_count += 1

    degrees = []
    stubs = multihomed = filtering = 0
    for autsys in graph.systems():
        metrics.type_counts[autsys.as_type] = (
            metrics.type_counts.get(autsys.as_type, 0) + 1
        )
        metrics.tier_counts[autsys.tier] = (
            metrics.tier_counts.get(autsys.tier, 0) + 1
        )
        degree = graph.degree(autsys.asn)
        degrees.append(degree)
        if not graph.customers_of(autsys.asn):
            stubs += 1
        if len(graph.providers_of(autsys.asn)) >= 2:
            multihomed += 1
        if autsys.filters_options:
            filtering += 1
    metrics.stub_fraction = stubs / len(graph)
    metrics.multihomed_fraction = multihomed / len(graph)
    metrics.filtering_fraction = filtering / len(graph)
    metrics.mean_degree = sum(degrees) / len(degrees)
    metrics.max_degree = max(degrees)
    metrics.colo_count = len(topo.colo_asns)
    metrics.university_count = len(topo.university_asns)
    return metrics


def path_length_histogram(
    routing: RoutingSystem,
    sources: Sequence[int],
    dests: Sequence[int],
    max_length: Optional[int] = None,
) -> Dict[Optional[int], int]:
    """AS-path-length histogram over a (sources x dests) sample.

    The ``None`` bucket counts unreachable pairs. ``max_length`` folds
    longer paths into their own bucket value (the histogram's last
    key) when given.
    """
    histogram: Dict[Optional[int], int] = {}
    for dest in dests:
        tree = routing.routing_tree(dest)
        for src in sources:
            if src == dest:
                continue
            info = tree.get(src)
            length: Optional[int] = None if info is None else info.length
            if (
                length is not None
                and max_length is not None
                and length > max_length
            ):
                length = max_length
            histogram[length] = histogram.get(length, 0) + 1
    return histogram
