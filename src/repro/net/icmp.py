"""ICMP message wire formats and quoting semantics.

Covers the four message kinds the paper's methodology depends on:

* Echo Request / Echo Reply — the ``ping`` and ``ping-RR`` probes. Per
  RFC 792 the replying host copies the request's identifier, sequence
  number, and data; per RFC 791/1122 it also copies the Record Route
  option into its reply header (that copy is what makes ``ping-RR``
  measure round-trip paths).
* Time Exceeded (TTL) — emitted by routers when a probe's TTL expires;
  the quoted offending header is how §4.2's TTL-limited ``ping-RR``
  recovers the RR contents.
* Destination Unreachable (port) — triggered by ``ping-RRudp`` probes to
  high UDP ports; the quoted header exposes RR slots at the destination
  even when it does not honor RR (§3.3).

Error messages quote the offending packet: RFC 792 mandates the IP header
(including options) plus at least eight payload bytes, and RFC 1812
encourages more; quoting behaviour is configurable per device, mirroring
the diversity measured by Malone & Luckie [16].
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.checksum import internet_checksum
from repro.net.packet import IPv4Packet, PacketDecodeError

__all__ = [
    "ICMP_ECHO_REPLY",
    "ICMP_DEST_UNREACH",
    "ICMP_ECHO_REQUEST",
    "ICMP_TIME_EXCEEDED",
    "CODE_PORT_UNREACH",
    "CODE_TTL_EXCEEDED",
    "IcmpDecodeError",
    "IcmpEcho",
    "IcmpError",
    "build_quote",
]

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACH = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11

CODE_PORT_UNREACH = 3
CODE_TTL_EXCEEDED = 0

_ECHO_HEADER = struct.Struct("!BBHHH")
_ERROR_HEADER = struct.Struct("!BBHI")

#: RFC 792's minimum quoted payload: IP header + 8 bytes.
MIN_QUOTE_PAYLOAD_BYTES = 8


class IcmpDecodeError(ValueError):
    """Raised when ICMP bytes cannot be parsed."""


@dataclass(frozen=True)
class IcmpEcho:
    """An ICMP Echo Request or Echo Reply."""

    kind: int  # ICMP_ECHO_REQUEST or ICMP_ECHO_REPLY
    ident: int
    seq: int
    data: bytes = b""

    def __post_init__(self) -> None:
        if self.kind not in (ICMP_ECHO_REQUEST, ICMP_ECHO_REPLY):
            raise ValueError(f"not an echo type: {self.kind}")

    @property
    def is_request(self) -> bool:
        return self.kind == ICMP_ECHO_REQUEST

    def reply(self) -> "IcmpEcho":
        """The Echo Reply a conforming host generates for this request."""
        if not self.is_request:
            raise ValueError("can only reply to an Echo Request")
        return IcmpEcho(ICMP_ECHO_REPLY, self.ident, self.seq, self.data)

    def to_bytes(self) -> bytes:
        header = bytearray(
            _ECHO_HEADER.pack(self.kind, 0, 0, self.ident, self.seq)
        )
        message = bytes(header) + self.data
        checksum = internet_checksum(message)
        return (
            message[:2] + checksum.to_bytes(2, "big") + message[4:]
        )

    @classmethod
    def from_bytes(cls, data: bytes, verify: bool = True) -> "IcmpEcho":
        if len(data) < _ECHO_HEADER.size:
            raise IcmpDecodeError("short ICMP echo")
        kind, code, _checksum, ident, seq = _ECHO_HEADER.unpack_from(data)
        if kind not in (ICMP_ECHO_REQUEST, ICMP_ECHO_REPLY):
            raise IcmpDecodeError(f"not an echo type: {kind}")
        if code != 0:
            raise IcmpDecodeError(f"bad echo code {code}")
        if verify and internet_checksum(data) != 0:
            raise IcmpDecodeError("ICMP checksum mismatch")
        return cls(kind, ident, seq, data[_ECHO_HEADER.size :])


def build_quote(offending: IPv4Packet, payload_bytes: int) -> bytes:
    """Serialize the quote an error message carries for ``offending``.

    The quote is the full IP header *including options* — which is what
    lets a probing source read back RR contents from expired or rejected
    probes — followed by up to ``payload_bytes`` of the offending payload.
    """
    if payload_bytes < MIN_QUOTE_PAYLOAD_BYTES:
        raise ValueError(
            f"quotes must include at least {MIN_QUOTE_PAYLOAD_BYTES} "
            f"payload bytes (got {payload_bytes})"
        )
    wire = offending.to_bytes()
    header_len = offending.header_length
    return wire[: header_len + min(payload_bytes, len(offending.payload))]


@dataclass(frozen=True)
class IcmpError:
    """An ICMP error (Time Exceeded or Destination Unreachable).

    ``quote`` holds the quoted offending datagram bytes (IP header with
    options plus leading payload bytes).
    """

    kind: int
    code: int
    quote: bytes

    def __post_init__(self) -> None:
        if self.kind not in (ICMP_TIME_EXCEEDED, ICMP_DEST_UNREACH):
            raise ValueError(f"not an error type: {self.kind}")

    @classmethod
    def time_exceeded(
        cls, offending: IPv4Packet, payload_bytes: int = MIN_QUOTE_PAYLOAD_BYTES
    ) -> "IcmpError":
        return cls(
            ICMP_TIME_EXCEEDED,
            CODE_TTL_EXCEEDED,
            build_quote(offending, payload_bytes),
        )

    @classmethod
    def port_unreachable(
        cls, offending: IPv4Packet, payload_bytes: int = MIN_QUOTE_PAYLOAD_BYTES
    ) -> "IcmpError":
        return cls(
            ICMP_DEST_UNREACH,
            CODE_PORT_UNREACH,
            build_quote(offending, payload_bytes),
        )

    def quoted_packet(self) -> Optional[IPv4Packet]:
        """Parse the quoted offending datagram, or None if unparseable.

        Real quotes are frequently truncated below the quoted packet's
        claimed total length, so parsing tolerates a short payload by
        padding (the IP header itself must be intact).
        """
        quote = self.quote
        if len(quote) < 20:
            return None
        claimed = int.from_bytes(quote[2:4], "big")
        if claimed > len(quote):
            quote = quote + b"\x00" * (claimed - len(quote))
        try:
            return IPv4Packet.from_bytes(quote, verify=False)
        except PacketDecodeError:
            return None

    def to_bytes(self) -> bytes:
        header = _ERROR_HEADER.pack(self.kind, self.code, 0, 0)
        message = header + self.quote
        checksum = internet_checksum(message)
        return message[:2] + checksum.to_bytes(2, "big") + message[4:]

    @classmethod
    def from_bytes(cls, data: bytes, verify: bool = True) -> "IcmpError":
        if len(data) < _ERROR_HEADER.size:
            raise IcmpDecodeError("short ICMP error")
        kind, code, _checksum, _unused = _ERROR_HEADER.unpack_from(data)
        if kind not in (ICMP_TIME_EXCEEDED, ICMP_DEST_UNREACH):
            raise IcmpDecodeError(f"not an error type: {kind}")
        if verify and internet_checksum(data) != 0:
            raise IcmpDecodeError("ICMP checksum mismatch")
        return cls(kind, code, data[_ERROR_HEADER.size :])


def parse_icmp(data: bytes, verify: bool = True) -> Tuple[int, object]:
    """Parse ICMP bytes into ``(type, message)``.

    ``message`` is an :class:`IcmpEcho` or :class:`IcmpError` depending on
    the type byte.
    """
    if not data:
        raise IcmpDecodeError("empty ICMP message")
    kind = data[0]
    if kind in (ICMP_ECHO_REQUEST, ICMP_ECHO_REPLY):
        return kind, IcmpEcho.from_bytes(data, verify=verify)
    if kind in (ICMP_TIME_EXCEEDED, ICMP_DEST_UNREACH):
        return kind, IcmpError.from_bytes(data, verify=verify)
    raise IcmpDecodeError(f"unsupported ICMP type {kind}")
