"""IPv4 wire-format substrate: addresses, options, packets, ICMP, UDP."""

from repro.net.addr import (
    IPv4Address,
    Prefix,
    addr_to_int,
    int_to_addr,
    parse_prefix,
    prefix_of,
    same_slash24,
)
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.icmp import (
    CODE_PORT_UNREACH,
    CODE_TTL_EXCEEDED,
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
    IcmpEcho,
    IcmpError,
)
from repro.net.options import (
    IPOPT_EOL,
    IPOPT_NOP,
    IPOPT_RR,
    RR_MAX_SLOTS,
    OptionDecodeError,
    RecordRouteOption,
    decode_options,
    encode_options,
)
from repro.net.packet import (
    DEFAULT_TTL,
    PROTO_ICMP,
    PROTO_UDP,
    IPv4Packet,
    PacketDecodeError,
)
from repro.net.timestamp import (
    IPOPT_TS,
    TimestampOption,
    TsFlag,
)
from repro.net.udp import HIGH_PORT_FLOOR, UdpDatagram

__all__ = [
    "IPv4Address",
    "Prefix",
    "addr_to_int",
    "int_to_addr",
    "parse_prefix",
    "prefix_of",
    "same_slash24",
    "internet_checksum",
    "verify_checksum",
    "IcmpEcho",
    "IcmpError",
    "ICMP_ECHO_REQUEST",
    "ICMP_ECHO_REPLY",
    "ICMP_TIME_EXCEEDED",
    "ICMP_DEST_UNREACH",
    "CODE_TTL_EXCEEDED",
    "CODE_PORT_UNREACH",
    "RecordRouteOption",
    "RR_MAX_SLOTS",
    "IPOPT_RR",
    "IPOPT_NOP",
    "IPOPT_EOL",
    "OptionDecodeError",
    "decode_options",
    "encode_options",
    "IPv4Packet",
    "PacketDecodeError",
    "PROTO_ICMP",
    "PROTO_UDP",
    "DEFAULT_TTL",
    "UdpDatagram",
    "HIGH_PORT_FLOOR",
    "IPOPT_TS",
    "TimestampOption",
    "TsFlag",
]
