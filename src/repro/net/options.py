"""IPv4 options wire format, centred on Record Route (RFC 791 §3.1).

The Record Route (RR) option is laid out as::

    +--------+--------+--------+---------//--------+
    |00000111| length | pointer|     route data    |
    +--------+--------+--------+---------//--------+
      type=7

``pointer`` is 1-based relative to the start of the option and points at
the next free four-octet slot; it starts at 4 (the first slot) and a
router with an address to record writes it at ``pointer`` and advances
``pointer`` by 4. When ``pointer > length`` the option is full and
routers forward the packet without recording (RFC 791: "If the route
data area is already full ... the datagram is forwarded without
inserting the address").

The IPv4 options area is capped at 40 bytes, so an RR option can hold at
most ``(40 - 3) // 4 = 9`` addresses — the paper's "nine hop limit".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.net.addr import int_to_addr

__all__ = [
    "IPOPT_EOL",
    "IPOPT_NOP",
    "IPOPT_RR",
    "MAX_OPTIONS_BYTES",
    "RR_MAX_SLOTS",
    "OptionDecodeError",
    "RecordRouteOption",
    "decode_options",
    "encode_options",
    "register_option_decoder",
]

IPOPT_EOL = 0  # End of Option List
IPOPT_NOP = 1  # No Operation
IPOPT_RR = 7  # Record Route

MAX_OPTIONS_BYTES = 40
RR_MAX_SLOTS = 9

# Smallest legal RR: type + length + pointer, zero slots.
_RR_HEADER_BYTES = 3


class OptionDecodeError(ValueError):
    """Raised when an options area cannot be parsed."""


@dataclass
class RecordRouteOption:
    """A mutable in-flight Record Route option.

    Attributes:
        slots: total number of four-octet address slots allocated.
        recorded: integer addresses stamped so far, in stamping order.
    """

    slots: int = RR_MAX_SLOTS
    recorded: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 1 <= self.slots <= RR_MAX_SLOTS:
            raise ValueError(
                f"RR slots must be in [1, {RR_MAX_SLOTS}], got {self.slots}"
            )
        if len(self.recorded) > self.slots:
            raise ValueError("more recorded addresses than slots")

    # -- semantics ---------------------------------------------------------

    @property
    def remaining(self) -> int:
        """Number of free slots left."""
        return self.slots - len(self.recorded)

    @property
    def full(self) -> bool:
        return self.remaining == 0

    def stamp(self, addr: int) -> bool:
        """Record ``addr`` if a slot is free.

        Returns True if the address was recorded; False if the option was
        already full (the packet is forwarded unmodified in that case).
        """
        if self.full:
            return False
        self.recorded.append(addr)
        return True

    def copy(self) -> "RecordRouteOption":
        return RecordRouteOption(self.slots, list(self.recorded))

    # -- wire format -------------------------------------------------------

    @property
    def length(self) -> int:
        """On-the-wire option length byte (header + all slots)."""
        return _RR_HEADER_BYTES + 4 * self.slots

    @property
    def pointer(self) -> int:
        """On-the-wire pointer byte (1-based offset of next free slot)."""
        return _RR_HEADER_BYTES + 1 + 4 * len(self.recorded)

    def to_bytes(self) -> bytes:
        out = bytearray()
        out.append(IPOPT_RR)
        out.append(self.length)
        out.append(self.pointer)
        for addr in self.recorded:
            out += addr.to_bytes(4, "big")
        out += b"\x00" * (4 * self.remaining)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "RecordRouteOption":
        """Decode a single RR option from ``data`` (exactly the option)."""
        if len(data) < _RR_HEADER_BYTES:
            raise OptionDecodeError("RR option shorter than 3 bytes")
        if data[0] != IPOPT_RR:
            raise OptionDecodeError(f"not an RR option (type {data[0]})")
        length, pointer = data[1], data[2]
        if length != len(data):
            raise OptionDecodeError(
                f"RR length byte {length} != option size {len(data)}"
            )
        route_bytes = length - _RR_HEADER_BYTES
        if route_bytes % 4:
            raise OptionDecodeError("RR route data not a multiple of 4")
        slots = route_bytes // 4
        if not 1 <= slots <= RR_MAX_SLOTS:
            raise OptionDecodeError(f"RR slot count {slots} out of range")
        if pointer < _RR_HEADER_BYTES + 1 or (pointer - 4) % 4:
            raise OptionDecodeError(f"bad RR pointer {pointer}")
        used = (pointer - (_RR_HEADER_BYTES + 1)) // 4
        if used > slots:
            raise OptionDecodeError("RR pointer beyond allocated slots")
        recorded = [
            int.from_bytes(data[3 + 4 * i : 7 + 4 * i], "big")
            for i in range(used)
        ]
        return cls(slots=slots, recorded=recorded)

    def __str__(self) -> str:
        hops = ", ".join(int_to_addr(a) for a in self.recorded)
        return f"RR({len(self.recorded)}/{self.slots}: [{hops}])"


#: Decoders for option kinds beyond Record Route, registered by their
#: implementing modules (e.g. :mod:`repro.net.timestamp`) so this
#: module stays dependency-free.
_EXTRA_DECODERS = {}


def register_option_decoder(kind: int, decoder) -> None:
    """Register ``decoder(bytes) -> option`` for option type ``kind``."""
    if kind in (IPOPT_EOL, IPOPT_NOP, IPOPT_RR):
        raise ValueError(f"option kind {kind} is built in")
    _EXTRA_DECODERS[kind] = decoder


def encode_options(options: Sequence[RecordRouteOption]) -> bytes:
    """Encode an options list into a padded IPv4 options area.

    The area is padded with EOL to a multiple of four bytes as required by
    the IHL field's word granularity. Raises :class:`OptionDecodeError` if
    the encoded area would exceed 40 bytes.
    """
    out = bytearray()
    for option in options:
        out += option.to_bytes()
    if len(out) > MAX_OPTIONS_BYTES:
        raise OptionDecodeError(
            f"options area {len(out)} bytes exceeds {MAX_OPTIONS_BYTES}"
        )
    while len(out) % 4:
        out.append(IPOPT_EOL)
    return bytes(out)


def decode_options(data: bytes) -> List[RecordRouteOption]:
    """Decode an IPv4 options area into its known options.

    Record Route decodes natively; other kinds (e.g. Timestamp) decode
    through registered decoders. NOP and EOL are consumed as padding;
    EOL terminates parsing. Unknown options with a valid length byte
    are skipped (routers must ignore options they do not implement);
    malformed areas raise :class:`OptionDecodeError`.
    """
    if len(data) > MAX_OPTIONS_BYTES:
        raise OptionDecodeError(
            f"options area {len(data)} bytes exceeds {MAX_OPTIONS_BYTES}"
        )
    found: List[RecordRouteOption] = []
    i = 0
    while i < len(data):
        kind = data[i]
        if kind == IPOPT_EOL:
            break
        if kind == IPOPT_NOP:
            i += 1
            continue
        if i + 2 > len(data):
            raise OptionDecodeError("truncated option header")
        length = data[i + 1]
        if length < 2 or i + length > len(data):
            raise OptionDecodeError(f"bad option length {length}")
        if kind == IPOPT_RR:
            found.append(RecordRouteOption.from_bytes(data[i : i + length]))
        elif kind in _EXTRA_DECODERS:
            found.append(_EXTRA_DECODERS[kind](data[i : i + length]))
        i += length
    return found
