"""The IP Timestamp option (RFC 791 §3.1, option type 68).

The paper's companion systems use Timestamp alongside Record Route:
reverse traceroute [11] issues *prespecified* timestamp probes to test
whether specific routers sit on a path, and "Measuring Networks Using
IP Options" [17] surveys both options as measurement primitives. This
module implements the full wire format so the prober can issue
``ping-TS`` probes as an extension experiment:

* flag 0 (``TS_ONLY``) — consecutive 32-bit timestamps only: up to
  nine per option (same 40-byte budget arithmetic as RR... actually
  ``(40-4)//4 = 9``);
* flag 1 (``TS_ADDR``) — (address, timestamp) pairs: up to four;
* flag 3 (``TS_PRESPEC``) — sender-prespecified addresses; only the
  named routers fill in their timestamp slot.

The ``overflow`` nibble counts devices that wanted to stamp but found
the option full — a quirk RR does not have.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.net.addr import int_to_addr
from repro.net.options import OptionDecodeError, register_option_decoder

__all__ = [
    "IPOPT_TS",
    "TsFlag",
    "TimestampOption",
    "MAX_TS_ONLY_SLOTS",
    "MAX_TS_ADDR_SLOTS",
]

IPOPT_TS = 68

#: Milliseconds since midnight UT, per RFC 791.
_MS_MOD = 1 << 32

_HEADER_BYTES = 4  # type, length, pointer, overflow|flags

MAX_TS_ONLY_SLOTS = 9
MAX_TS_ADDR_SLOTS = 4


class TsFlag(enum.IntEnum):
    """The option's flag nibble."""

    TS_ONLY = 0
    TS_ADDR = 1
    TS_PRESPEC = 3


@dataclass
class TimestampOption:
    """A mutable in-flight Timestamp option.

    For ``TS_ONLY``, ``entries`` holds ``(None, timestamp)`` tuples;
    for the address'd flags it holds ``(address, timestamp)`` where a
    prespecified, not-yet-stamped slot has ``timestamp is None``.
    """

    flag: TsFlag = TsFlag.TS_ONLY
    slots: int = MAX_TS_ONLY_SLOTS
    entries: List[Tuple[Optional[int], Optional[int]]] = field(
        default_factory=list
    )
    overflow: int = 0

    def __post_init__(self) -> None:
        limit = (
            MAX_TS_ONLY_SLOTS
            if self.flag is TsFlag.TS_ONLY
            else MAX_TS_ADDR_SLOTS
        )
        if not 1 <= self.slots <= limit:
            raise ValueError(
                f"{self.flag.name} supports 1..{limit} slots, got "
                f"{self.slots}"
            )
        if self.flag is TsFlag.TS_PRESPEC:
            if len(self.entries) != self.slots:
                raise ValueError(
                    "prespecified options must name every slot up front"
                )
        elif len(self.entries) > self.slots:
            raise ValueError("more entries than slots")
        if not 0 <= self.overflow <= 15:
            raise ValueError(f"overflow nibble out of range: {self.overflow}")

    # -- semantics ---------------------------------------------------------

    @classmethod
    def prespecified(cls, addrs: List[int]) -> "TimestampOption":
        """A TS_PRESPEC option asking exactly ``addrs`` to stamp."""
        if not 1 <= len(addrs) <= MAX_TS_ADDR_SLOTS:
            raise ValueError(
                f"prespecify 1..{MAX_TS_ADDR_SLOTS} addresses"
            )
        return cls(
            flag=TsFlag.TS_PRESPEC,
            slots=len(addrs),
            entries=[(addr, None) for addr in addrs],
        )

    @property
    def stamped_count(self) -> int:
        return sum(1 for _addr, ts in self.entries if ts is not None)

    @property
    def full(self) -> bool:
        if self.flag is TsFlag.TS_PRESPEC:
            return self.stamped_count == self.slots
        return len(self.entries) >= self.slots

    def stamp(self, device_addrs: List[int], now_ms: int) -> bool:
        """Record a timestamp for a device owning ``device_addrs``.

        Returns True if a slot was written. TS_PRESPEC stamps only when
        one of the device's addresses matches the next unstamped
        prespecified slot (RFC 791: slots are consumed in order). When
        the option is full, the overflow counter increments (capped at
        15), mirroring the RFC.
        """
        now_ms %= _MS_MOD
        if self.flag is TsFlag.TS_PRESPEC:
            for index, (addr, ts) in enumerate(self.entries):
                if ts is not None:
                    continue
                if addr in device_addrs:
                    self.entries[index] = (addr, now_ms)
                    return True
                return False  # next slot names someone else
            return False
        if self.full:
            if self.overflow < 15:
                self.overflow += 1
            return False
        if self.flag is TsFlag.TS_ONLY:
            self.entries.append((None, now_ms))
        else:
            self.entries.append((device_addrs[0], now_ms))
        return True

    def copy(self) -> "TimestampOption":
        return TimestampOption(
            flag=self.flag,
            slots=self.slots,
            entries=list(self.entries),
            overflow=self.overflow,
        )

    # -- wire format -------------------------------------------------------

    @property
    def _entry_bytes(self) -> int:
        return 4 if self.flag is TsFlag.TS_ONLY else 8

    @property
    def length(self) -> int:
        return _HEADER_BYTES + self.slots * self._entry_bytes

    @property
    def pointer(self) -> int:
        if self.flag is TsFlag.TS_PRESPEC:
            used = self.stamped_count
        else:
            used = len(self.entries)
        return _HEADER_BYTES + 1 + used * self._entry_bytes

    def to_bytes(self) -> bytes:
        out = bytearray()
        out.append(IPOPT_TS)
        out.append(self.length)
        out.append(self.pointer)
        out.append(((self.overflow & 0xF) << 4) | int(self.flag))
        for addr, ts in self.entries:
            if self.flag is not TsFlag.TS_ONLY:
                out += (addr or 0).to_bytes(4, "big")
            out += (ts if ts is not None else 0).to_bytes(4, "big")
        free = self.slots - len(self.entries)
        out += b"\x00" * (free * self._entry_bytes)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "TimestampOption":
        if len(data) < _HEADER_BYTES:
            raise OptionDecodeError("timestamp option shorter than 4 bytes")
        if data[0] != IPOPT_TS:
            raise OptionDecodeError(
                f"not a timestamp option (type {data[0]})"
            )
        length, pointer = data[1], data[2]
        overflow, flag_value = data[3] >> 4, data[3] & 0xF
        try:
            flag = TsFlag(flag_value)
        except ValueError:
            raise OptionDecodeError(
                f"unknown timestamp flag {flag_value}"
            ) from None
        if length != len(data):
            raise OptionDecodeError(
                f"TS length byte {length} != option size {len(data)}"
            )
        entry_bytes = 4 if flag is TsFlag.TS_ONLY else 8
        body = length - _HEADER_BYTES
        if body % entry_bytes:
            raise OptionDecodeError("TS body not a multiple of entry size")
        slots = body // entry_bytes
        if pointer < _HEADER_BYTES + 1 or (
            (pointer - _HEADER_BYTES - 1) % entry_bytes
        ):
            raise OptionDecodeError(f"bad TS pointer {pointer}")
        used = (pointer - _HEADER_BYTES - 1) // entry_bytes
        if used > slots:
            raise OptionDecodeError("TS pointer beyond allocated slots")

        entries: List[Tuple[Optional[int], Optional[int]]] = []
        offset = _HEADER_BYTES
        for index in range(slots):
            if flag is TsFlag.TS_ONLY:
                if index >= used:
                    break
                ts = int.from_bytes(data[offset : offset + 4], "big")
                entries.append((None, ts))
                offset += 4
            else:
                addr = int.from_bytes(data[offset : offset + 4], "big")
                ts = int.from_bytes(data[offset + 4 : offset + 8], "big")
                offset += 8
                if flag is TsFlag.TS_PRESPEC:
                    entries.append((addr, ts if index < used else None))
                elif index < used:
                    entries.append((addr, ts))
        option = cls.__new__(cls)
        option.flag = flag
        option.slots = slots
        option.entries = entries
        option.overflow = overflow
        return option

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TimestampOption)
            and self.flag == other.flag
            and self.slots == other.slots
            and self.entries == other.entries
            and self.overflow == other.overflow
        )

    def __str__(self) -> str:
        rendered = ", ".join(
            f"{int_to_addr(addr) if addr is not None else '*'}@{ts}"
            for addr, ts in self.entries
        )
        return (
            f"TS({self.flag.name} {self.stamped_count}/{self.slots}"
            f" ovf={self.overflow}: [{rendered}])"
        )


register_option_decoder(IPOPT_TS, TimestampOption.from_bytes)
