"""UDP datagram wire format.

``ping-RRudp`` (§3.3) sends UDP datagrams to high-numbered ports with the
RR option enabled so destinations answer with ICMP port-unreachable
errors that quote the offending header. This module provides the minimal
UDP encode/decode those probes need, including the IPv4 pseudo-header
checksum.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum

__all__ = ["HIGH_PORT_FLOOR", "UdpDecodeError", "UdpDatagram"]

_UDP_HEADER = struct.Struct("!HHHH")

#: scamper-style "high-numbered" destination ports start here; ports above
#: this floor are overwhelmingly closed on end hosts, which is what makes
#: them reliable port-unreachable triggers.
HIGH_PORT_FLOOR = 33434  # traceroute's classic base port


class UdpDecodeError(ValueError):
    """Raised when UDP bytes cannot be parsed."""


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram (header fields plus payload)."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        for name, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} port out of range: {port}")

    @property
    def length(self) -> int:
        return _UDP_HEADER.size + len(self.payload)

    def _pseudo_header(self, src: int, dst: int) -> bytes:
        return struct.pack(
            "!IIBBH", src, dst, 0, 17, self.length
        )

    def to_bytes(self, src: int = 0, dst: int = 0) -> bytes:
        """Serialize; ``src``/``dst`` feed the pseudo-header checksum."""
        header = _UDP_HEADER.pack(
            self.src_port, self.dst_port, self.length, 0
        )
        message = header + self.payload
        checksum = internet_checksum(self._pseudo_header(src, dst) + message)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: zero means "no checksum"
        return message[:6] + checksum.to_bytes(2, "big") + message[8:]

    @classmethod
    def from_bytes(cls, data: bytes) -> "UdpDatagram":
        if len(data) < _UDP_HEADER.size:
            raise UdpDecodeError("short UDP datagram")
        src_port, dst_port, length, _checksum = _UDP_HEADER.unpack_from(data)
        if length < _UDP_HEADER.size or length > len(data):
            raise UdpDecodeError(f"bad UDP length {length}")
        return cls(src_port, dst_port, data[_UDP_HEADER.size : length])
