"""IPv4 packet model with full wire-format round-tripping.

The simulator mostly walks :class:`IPv4Packet` objects directly (parsing
bytes at every hop would be needless work), but the prober layer encodes
and decodes real packet bytes at the edges — exactly where scamper would
— so the wire format is exercised on every measurement.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.net.addr import int_to_addr
from repro.net.checksum import internet_checksum
from repro.net.options import (
    MAX_OPTIONS_BYTES,
    OptionDecodeError,
    RecordRouteOption,
    decode_options,
    encode_options,
)
# Importing repro.net.timestamp registers its option decoder, so any
# packet parsed through this module understands TS options too.
from repro.net.timestamp import TimestampOption

__all__ = [
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "DEFAULT_TTL",
    "PacketDecodeError",
    "IPv4Packet",
]

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

#: The conventional default initial TTL used by the paper's probes (§4.2).
DEFAULT_TTL = 64

_BASE_HEADER = struct.Struct("!BBHHHBBHII")
_BASE_HEADER_BYTES = 20


class PacketDecodeError(ValueError):
    """Raised when packet bytes cannot be parsed."""


@dataclass
class IPv4Packet:
    """An IPv4 packet: header fields, options, and an opaque payload.

    ``src`` and ``dst`` are integer addresses. ``options`` holds decoded
    Record Route options (this repository needs no others). ``payload``
    carries the encoded transport message (ICMP or UDP bytes).
    """

    src: int
    dst: int
    proto: int = PROTO_ICMP
    ttl: int = DEFAULT_TTL
    ident: int = 0
    tos: int = 0
    flags: int = 0
    frag_offset: int = 0
    options: List[RecordRouteOption] = field(default_factory=list)
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 255:
            raise ValueError(f"TTL out of range: {self.ttl}")
        if not 0 <= self.ident <= 0xFFFF:
            raise ValueError(f"IP ID out of range: {self.ident}")

    # -- convenience -------------------------------------------------------

    @property
    def record_route(self) -> Optional[RecordRouteOption]:
        """The packet's Record Route option, if any (first one wins)."""
        for option in self.options:
            if isinstance(option, RecordRouteOption):
                return option
        return None

    @property
    def timestamp_option(self) -> Optional["TimestampOption"]:
        """The packet's Timestamp option, if any (first one wins)."""
        for option in self.options:
            if isinstance(option, TimestampOption):
                return option
        return None

    @property
    def has_options(self) -> bool:
        return bool(self.options)

    def copy(self) -> "IPv4Packet":
        return replace(
            self,
            options=[opt.copy() for opt in self.options],
        )

    @property
    def header_length(self) -> int:
        """Header size in bytes, including the padded options area."""
        options_len = len(encode_options(self.options))
        return _BASE_HEADER_BYTES + options_len

    @property
    def total_length(self) -> int:
        return self.header_length + len(self.payload)

    # -- wire format -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize with a correct IHL, total length, and checksum."""
        options_area = encode_options(self.options)
        ihl_words = (_BASE_HEADER_BYTES + len(options_area)) // 4
        if ihl_words > 15:
            raise OptionDecodeError("header exceeds maximum IHL")
        version_ihl = (4 << 4) | ihl_words
        flags_frag = ((self.flags & 0x7) << 13) | (self.frag_offset & 0x1FFF)
        header = bytearray(
            _BASE_HEADER.pack(
                version_ihl,
                self.tos,
                self.total_length,
                self.ident,
                flags_frag,
                self.ttl,
                self.proto,
                0,  # checksum placeholder
                self.src,
                self.dst,
            )
        )
        header += options_area
        checksum = internet_checksum(bytes(header))
        header[10:12] = checksum.to_bytes(2, "big")
        return bytes(header) + self.payload

    @classmethod
    def from_bytes(cls, data: bytes, verify: bool = True) -> "IPv4Packet":
        """Parse packet bytes; raises :class:`PacketDecodeError` on junk."""
        if len(data) < _BASE_HEADER_BYTES:
            raise PacketDecodeError(f"short packet ({len(data)} bytes)")
        (
            version_ihl,
            tos,
            total_length,
            ident,
            flags_frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = _BASE_HEADER.unpack_from(data)
        version = version_ihl >> 4
        if version != 4:
            raise PacketDecodeError(f"not IPv4 (version {version})")
        header_len = (version_ihl & 0xF) * 4
        if header_len < _BASE_HEADER_BYTES or header_len > len(data):
            raise PacketDecodeError(f"bad IHL ({header_len} bytes)")
        if total_length < header_len or total_length > len(data):
            raise PacketDecodeError(f"bad total length {total_length}")
        if verify and internet_checksum(data[:header_len]) != 0:
            raise PacketDecodeError("header checksum mismatch")
        options_area = data[_BASE_HEADER_BYTES:header_len]
        if len(options_area) > MAX_OPTIONS_BYTES:
            raise PacketDecodeError("options area too large")
        try:
            options = decode_options(options_area)
        except OptionDecodeError as exc:
            raise PacketDecodeError(f"bad options area: {exc}") from exc
        return cls(
            src=src,
            dst=dst,
            proto=proto,
            ttl=ttl,
            ident=ident,
            tos=tos,
            flags=(flags_frag >> 13) & 0x7,
            frag_offset=flags_frag & 0x1FFF,
            options=options,
            payload=data[header_len:total_length],
        )

    def __str__(self) -> str:
        rr = self.record_route
        rr_text = f" {rr}" if rr is not None else ""
        return (
            f"IPv4({int_to_addr(self.src)} -> {int_to_addr(self.dst)} "
            f"proto={self.proto} ttl={self.ttl}{rr_text})"
        )
