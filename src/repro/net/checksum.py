"""The Internet checksum (RFC 1071).

Used by the IPv4 header, ICMP messages, and (optionally) UDP. Implemented
as the classic ones'-complement sum over 16-bit words with end-around
carry folding.
"""

from __future__ import annotations

__all__ = ["internet_checksum", "verify_checksum"]


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit Internet checksum of ``data``.

    Odd-length input is implicitly padded with a zero byte, per RFC 1071.
    The returned value is the ones' complement of the ones'-complement sum,
    ready to be written into a header's checksum field.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold 32-bit sum into 16 bits with end-around carry.
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (including its embedded checksum field) verifies.

    A correct RFC 1071 checksum makes the ones'-complement sum of the
    whole datagram equal ``0xFFFF``, i.e. :func:`internet_checksum`
    over it returns zero.
    """
    return internet_checksum(data) == 0
