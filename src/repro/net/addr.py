"""IPv4 addresses and prefixes.

The whole repository manipulates addresses as plain ``int`` values in the
range ``[0, 2**32)`` for speed, and uses :class:`IPv4Address` /
:class:`Prefix` wrappers at API boundaries where readability matters.
Millions of addresses flow through the simulator, so the hot paths
(longest-prefix match, hitlist generation) stay on raw integers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "IPv4Address",
    "Prefix",
    "addr_to_int",
    "int_to_addr",
    "parse_prefix",
    "prefix_of",
    "same_slash24",
]

_DOTTED_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

MAX_ADDR = (1 << 32) - 1


def addr_to_int(text: str) -> int:
    """Parse dotted-quad ``text`` into an integer address.

    >>> addr_to_int("10.0.0.1")
    167772161
    """
    match = _DOTTED_RE.match(text)
    if match is None:
        raise ValueError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_addr(value: int) -> str:
    """Format integer ``value`` as a dotted quad.

    >>> int_to_addr(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_ADDR:
        raise ValueError(f"address out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def prefix_of(value: int, length: int) -> int:
    """Return the network base of ``value`` under a ``length``-bit mask."""
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    mask = (MAX_ADDR << (32 - length)) & MAX_ADDR
    return value & mask


def same_slash24(a: int, b: int) -> bool:
    """True if integer addresses ``a`` and ``b`` share a /24.

    The paper's §3.6 equates destinations in the same /24 because they
    "generally share similar paths from a vantage point".
    """
    return (a >> 8) == (b >> 8)


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A single IPv4 address, hashable and ordered by numeric value."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_ADDR:
            raise ValueError(f"address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(addr_to_int(text))

    def __str__(self) -> str:
        return int_to_addr(self.value)

    def __int__(self) -> int:
        return self.value

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        if len(data) != 4:
            raise ValueError(f"expected 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR prefix (network base + mask length).

    Instances are normalised: host bits below the mask must be zero.
    """

    base: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if prefix_of(self.base, self.length) != self.base:
            raise ValueError(
                f"host bits set in prefix base: "
                f"{int_to_addr(self.base)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        return parse_prefix(text)

    @classmethod
    def containing(cls, addr: int, length: int) -> "Prefix":
        """The ``length``-bit prefix containing integer address ``addr``."""
        return cls(prefix_of(addr, length), length)

    def __str__(self) -> str:
        return f"{int_to_addr(self.base)}/{self.length}"

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    @property
    def last(self) -> int:
        """Highest address inside the prefix."""
        return self.base + self.num_addresses - 1

    def __contains__(self, addr: object) -> bool:
        if isinstance(addr, IPv4Address):
            addr = addr.value
        if not isinstance(addr, int):
            return NotImplemented  # type: ignore[return-value]
        return prefix_of(addr, self.length) == self.base

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or nested inside this prefix."""
        return (
            other.length >= self.length
            and prefix_of(other.base, self.length) == self.base
        )

    def addresses(self) -> Iterator[int]:
        """Iterate every integer address in the prefix (use with care)."""
        return iter(range(self.base, self.base + self.num_addresses))

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the ``new_length``-bit subnets of this prefix."""
        if new_length < self.length:
            raise ValueError(
                f"cannot subnet /{self.length} into larger /{new_length}"
            )
        step = 1 << (32 - new_length)
        for base in range(self.base, self.base + self.num_addresses, step):
            yield Prefix(base, new_length)


def parse_prefix(text: str) -> Prefix:
    """Parse ``"a.b.c.d/len"`` into a :class:`Prefix`.

    >>> str(parse_prefix("192.0.2.0/24"))
    '192.0.2.0/24'
    """
    addr_text, sep, length_text = text.partition("/")
    if not sep:
        raise ValueError(f"missing '/length' in prefix: {text!r}")
    return Prefix(addr_to_int(addr_text), int(length_text))
