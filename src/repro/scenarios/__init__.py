"""Reproducible Internet-in-a-box scenarios."""

from repro.scenarios.internet import (
    CLOUD_NAMES,
    Scenario,
    ScenarioParams,
    build_scenario,
)
from repro.scenarios.presets import (
    PRESETS,
    get_preset,
    small,
    small_2011,
    study_2011,
    study_2016,
    tiny,
)

__all__ = [
    "CLOUD_NAMES",
    "Scenario",
    "ScenarioParams",
    "build_scenario",
    "PRESETS",
    "get_preset",
    "small",
    "small_2011",
    "study_2011",
    "study_2016",
    "tiny",
]
