"""Demo tenant pack for the multi-tenant measurement service.

A small, deterministic set of submissions exercising the service's
whole surface: two well-behaved tenants mixing RR and ping specs, and
one tenant whose spec deterministically exceeds the per-spec probe
budget and is rejected at admission with a machine-readable reason.
``repro serve --demo``, ``repro stats --service``, the CI
service-smoke job, and the service benchmark all build on this pack
so they agree on what "the demo workload" means.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.service.credits import TenantQuota

__all__ = ["demo_quota", "demo_spec_records"]


def demo_quota() -> Tuple[TenantQuota, Dict[str, TenantQuota]]:
    """``(default_quota, per_tenant_overrides)`` for the demo pack.

    Sized against the ``tiny`` preset so the flood spec is over budget
    (60 targets x ~9 working VPs > 400 probes) while everything else
    completes within a handful of accrual rounds.
    """
    default = TenantQuota(
        initial_credits=300.0,
        accrual_per_round=60.0,
        balance_cap=600.0,
        cost_per_probe=1.0,
        max_probes_per_spec=400,
        max_active_specs=2,
    )
    return default, {}


def demo_spec_records() -> List[dict]:
    """The demo submissions, in submission order."""
    return [
        {
            "tenant": "alice",
            "name": "rr-east",
            "kind": "rr",
            "target_count": 10,
            "vp_policy": "mlab",
            "vp_limit": 3,
        },
        {
            "tenant": "alice",
            "name": "ping-latency",
            "kind": "ping",
            "target_count": 8,
            "target_offset": 2,
            "vp_policy": "planetlab",
            "vp_limit": 2,
        },
        {
            "tenant": "bob",
            "name": "rr-wide",
            "kind": "rr",
            "target_count": 12,
            "vp_policy": "working",
            "vp_limit": 4,
            "priority": 0,
            "units_per_round": 2,
        },
        # Deliberately over the per-spec probe budget: 60 targets
        # across every working VP of the tiny preset costs > 400
        # credits, so admission refuses it deterministically.
        {
            "tenant": "carol",
            "name": "rr-flood",
            "kind": "rr",
            "target_count": 60,
            "vp_policy": "working",
        },
    ]
