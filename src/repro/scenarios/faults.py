"""Named fault-plan presets (the ``--faults`` vocabulary).

Mirrors :mod:`repro.scenarios.presets` for chaos: a small dictionary
of named plans tuned so that a tiny test world already exhibits each
fault's signature (dark VPs, flap-window unreachability, bursty loss,
starved slow paths), plus ``chaos`` combining all four.

Plans are seeded from the scenario seed by default
(``derive_seed(seed, "faults")``), so ``--preset tiny --seed 7
--faults chaos`` names one reproducible adversarial world.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.specs import (
    FaultPlan,
    LinkFlap,
    LossBurst,
    OptionStrip,
    RateLimitStorm,
    SpoofedReply,
    StampCorruption,
    TruncatedOption,
    VpChurn,
    VpCrash,
    VpHang,
    ZombieVp,
)
from repro.rng import derive_seed

__all__ = ["FAULT_PRESETS", "build_fault_plan"]

#: name -> tuple of fault specs (seed applied at build time).
FAULT_PRESETS = {
    "none": (),
    "vp-churn": (VpChurn(prob=0.5, max_dark_attempts=2),),
    "link-flap": (LinkFlap(count=3, start=0.2, duration=0.6),),
    "loss-burst": (
        LossBurst(p_enter=0.05, p_exit=0.2, drop_prob=0.9),
    ),
    "rate-storm": (
        RateLimitStorm(scale=0.05, start=0.1, duration=0.8),
    ),
    "chaos": (
        VpChurn(prob=0.4, max_dark_attempts=2),
        LinkFlap(count=2, start=0.25, duration=0.5),
        LossBurst(p_enter=0.03, p_exit=0.25, drop_prob=0.85),
        RateLimitStorm(scale=0.1, start=0.2, duration=0.6, prob=0.75),
    ),
    # Supervision-era pathologies (PR 5): workers that wedge or die.
    # ``hang`` is transient (first attempt only — a retry heals);
    # ``crash-loop`` is the poison VP the quarantine machinery exists
    # for (crashes on *every* attempt).
    "hang": (
        VpHang(prob=0.3, attempts=1, after_targets=5, hang_seconds=60.0),
    ),
    "crash-loop": (VpCrash(prob=0.3, attempts=None, after_targets=2),),
    # Misbehavior-era pathologies (PR 10): the dataplane lies instead
    # of failing. ``misbehave`` keeps corruption sparse (every VP still
    # clears the garbage-ratio gate, so quarantine happens per-reply,
    # not per-VP); ``hostile`` adds heavier corruption plus a zombie
    # VP that replays one stale answer until its breaker trips.
    "misbehave": (
        StampCorruption(prob=0.08),
        OptionStrip(prob=0.08),
        TruncatedOption(prob=0.05, sticky=False),
        SpoofedReply(prob=0.05),
    ),
    "hostile": (
        StampCorruption(prob=0.15),
        OptionStrip(prob=0.1),
        TruncatedOption(prob=0.1),
        SpoofedReply(prob=0.1),
        ZombieVp(prob=0.25),
    ),
    "pathological": (
        VpChurn(prob=0.3, max_dark_attempts=1),
        LossBurst(p_enter=0.03, p_exit=0.25, drop_prob=0.85),
        VpHang(prob=0.2, attempts=None, after_targets=3,
               hang_seconds=60.0),
        VpCrash(prob=0.2, attempts=None, after_targets=2),
    ),
}


def build_fault_plan(
    name: str,
    scenario_seed: int = 2016,
    seed: Optional[int] = None,
) -> FaultPlan:
    """Resolve a preset name to a seeded :class:`FaultPlan`.

    ``seed`` overrides the default derivation from the scenario seed
    (useful for sweeping chaos realisations over one fixed Internet).
    """
    try:
        specs = FAULT_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PRESETS))
        raise ValueError(
            f"unknown fault preset {name!r} (known: {known})"
        ) from None
    if seed is None:
        seed = derive_seed(scenario_seed, "faults")
    return FaultPlan(seed=seed, specs=specs)
