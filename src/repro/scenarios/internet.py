"""Internet-in-a-box: everything a study needs, built from one seed.

A :class:`Scenario` bundles the generated topology, routing, router
fabric, prefix table, hitlist, AS classification, the dataplane, a
prober, and the vantage points — i.e. the complete experimental
apparatus of §3.1. Scenario *presets* (``repro.scenarios.presets``)
instantiate the 2016 study, the 2011 study, and small variants for
tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.probing.prober import Prober
from repro.probing.vantage import (
    SITE_CITIES,
    Platform,
    VantagePoint,
    vp_addr,
)
from repro.rng import stable_uniform
from repro.sim.network import Network
from repro.sim.policies import SimParams
from repro.topology.classification import ASClassification
from repro.topology.generator import (
    GeneratedTopology,
    TopologyParams,
    generate_topology,
)
from repro.topology.hitlist import Hitlist, build_hitlist
from repro.topology.prefixes import PrefixTable, build_prefix_table
from repro.topology.routers import RouterFabric
from repro.topology.routing import RoutingSystem

__all__ = ["ScenarioParams", "Scenario", "build_scenario", "CLOUD_NAMES"]

#: Names for the synthetic cloud analogs, richest peering first
#: (stand-ins for the paper's GCE / EC2 / Softlayer).
CLOUD_NAMES = ["gce", "ec2", "softlayer"]


@dataclass(frozen=True)
class ScenarioParams:
    """Everything needed to regenerate a scenario bit-for-bit."""

    name: str
    seed: int
    topology: TopologyParams
    sim: SimParams
    prefix_scale: float = 0.5
    num_mlab: int = 40
    num_planetlab: int = 26
    #: Probability a VP's site drops options packets locally.
    mlab_filtered_prob: float = 0.18
    planetlab_filtered_prob: float = 0.35
    #: How many distinct host ASes each platform's sites spread over.
    #: M-Lab sites cluster inside a handful of transit/colo providers
    #: (Level3, Cogent, Tata, ...), so many sites share an AS.
    mlab_as_pool: int = 10
    planetlab_as_pool: int = 40
    #: Offset into the shared site-name list; both study years draw
    #: from the same list, so overlapping ranges yield "common VPs".
    mlab_site_offset: int = 0
    planetlab_site_offset: int = 0


@dataclass
class Scenario:
    """A fully assembled simulated Internet plus measurement apparatus."""

    params: ScenarioParams
    topo: GeneratedTopology
    routing: RoutingSystem
    fabric: RouterFabric
    table: PrefixTable
    hitlist: Hitlist
    classification: ASClassification
    network: Network
    prober: Prober
    mlab_vps: List[VantagePoint] = field(default_factory=list)
    planetlab_vps: List[VantagePoint] = field(default_factory=list)
    cloud_vps: List[VantagePoint] = field(default_factory=list)
    origin: Optional[VantagePoint] = None  # the USC-style ping source

    @property
    def name(self) -> str:
        return self.params.name

    @property
    def seed(self) -> int:
        return self.params.seed

    @property
    def graph(self):
        return self.topo.graph

    @property
    def vps(self) -> List[VantagePoint]:
        """The paper's VP set: every M-Lab and PlanetLab machine."""
        return self.mlab_vps + self.planetlab_vps

    @property
    def working_vps(self) -> List[VantagePoint]:
        """VPs that are not locally filtered (can emit options packets)."""
        return [vp for vp in self.vps if not vp.local_filtered]

    def vp_by_name(self, name: str) -> VantagePoint:
        for vp in self.vps + self.cloud_vps + (
            [self.origin] if self.origin else []
        ):
            if vp is not None and vp.name == name:
                return vp
        raise KeyError(f"unknown vantage point {name!r}")

    def describe(self) -> str:
        return (
            f"scenario {self.name!r}: {len(self.graph)} ASes, "
            f"{len(self.table)} prefixes, {len(self.hitlist)} destinations, "
            f"{len(self.mlab_vps)} M-Lab + {len(self.planetlab_vps)} "
            f"PlanetLab VPs ({len(self.working_vps)} unfiltered)"
        )


def _site_name(index: int) -> str:
    base = SITE_CITIES[index % len(SITE_CITIES)]
    round_number = index // len(SITE_CITIES)
    return base if round_number == 0 else f"{base}{round_number + 1}"


def _place_vps(
    scenario: Scenario,
    platform: Platform,
    host_asns: List[int],
    count: int,
    filtered_prob: float,
    site_offset: int,
) -> List[VantagePoint]:
    """Attach ``count`` VPs to ASes drawn round-robin from ``host_asns``."""
    if not host_asns:
        raise ValueError(f"no candidate ASes for {platform.value} VPs")
    seed = scenario.seed
    vps = []
    for index in range(count):
        site = _site_name(site_offset + index)
        asn = host_asns[index % len(host_asns)]
        name = f"{platform.value}-{site}"
        vps.append(
            VantagePoint(
                name=name,
                site=site,
                platform=platform,
                asn=asn,
                addr=vp_addr(asn, index),
                local_filtered=(
                    stable_uniform(seed, "vp-filter", name) < filtered_prob
                ),
            )
        )
    return vps


def build_scenario(params: ScenarioParams) -> Scenario:
    """Assemble the full apparatus for ``params``."""
    topo = generate_topology(params.topology)
    routing = RoutingSystem(topo.graph)
    fabric = RouterFabric(topo.graph, seed=params.seed)
    table = build_prefix_table(
        topo.graph, seed=params.seed, prefix_scale=params.prefix_scale
    )
    hitlist = build_hitlist(table, seed=params.seed)
    network = Network(topo, routing, fabric, hitlist, params.sim)
    scenario = Scenario(
        params=params,
        topo=topo,
        routing=routing,
        fabric=fabric,
        table=table,
        hitlist=hitlist,
        classification=ASClassification.from_graph(topo.graph),
        network=network,
        prober=Prober(network),
    )

    scenario.mlab_vps = _place_vps(
        scenario,
        Platform.MLAB,
        topo.colo_asns[: max(1, params.mlab_as_pool)],
        params.num_mlab,
        params.mlab_filtered_prob,
        params.mlab_site_offset,
    )
    university_pool = topo.university_asns or topo.edges
    scenario.planetlab_vps = _place_vps(
        scenario,
        Platform.PLANETLAB,
        university_pool[: max(1, params.planetlab_as_pool)],
        params.num_planetlab,
        params.planetlab_filtered_prob,
        params.planetlab_site_offset,
    )
    scenario.cloud_vps = [
        VantagePoint(
            name=f"cloud-{CLOUD_NAMES[rank]}",
            site=CLOUD_NAMES[rank],
            platform=Platform.CLOUD,
            asn=asn,
            addr=vp_addr(asn, 0),
        )
        for rank, asn in enumerate(topo.clouds)
    ]
    # The USC-style origin: a well-connected university machine used
    # for the plain-ping study. Never locally filtered for plain pings
    # (local filters only affect options packets anyway).
    origin_asn = (university_pool or topo.edges)[0]
    scenario.origin = VantagePoint(
        name="origin-usc",
        site="usc",
        platform=Platform.LOCAL,
        asn=origin_asn,
        addr=vp_addr(origin_asn, 99),
    )
    return scenario
