"""Scenario presets: the study Internets at several scales.

``study_2016``/``study_2011`` are the shapes the paper's experiments
run against (scaled down from 510k prefixes / 141 VPs to something a
laptop walks in seconds); ``small`` is the benchmark default and
``tiny`` keeps unit tests fast. The 2011 preset differs from 2016 the
way §3.4 describes the real change: much less peering (low
``flattening``), fewer colo facilities, far fewer M-Lab sites, and a
PlanetLab-heavy VP population.
"""

from __future__ import annotations

from repro.rng import derive_seed
from repro.scenarios.internet import Scenario, ScenarioParams, build_scenario
from repro.sim.policies import SimParams
from repro.topology.generator import TopologyParams

__all__ = [
    "tiny",
    "small",
    "mid",
    "small_2011",
    "study_2016",
    "study_2011",
    "PRESETS",
    "get_preset",
]


def tiny(seed: int = 2016) -> Scenario:
    """A minimal Internet for unit tests (~hundreds of destinations)."""
    return build_scenario(
        ScenarioParams(
            name="tiny",
            seed=seed,
            topology=TopologyParams(
                seed=seed,
                num_tier1=4,
                num_tier2=12,
                num_edge=120,
                ixp_count=3,
                ixp_mean_members=8,
            ),
            sim=SimParams(seed=seed),
            prefix_scale=0.25,
            num_mlab=6,
            num_planetlab=5,
            mlab_as_pool=3,
            planetlab_as_pool=12,
        )
    )


def small(seed: int = 2016) -> Scenario:
    """The benchmark default (~1.5-2k destinations, ~30 VPs)."""
    return build_scenario(
        ScenarioParams(
            name="small",
            seed=seed,
            topology=TopologyParams(
                seed=seed,
                num_tier1=6,
                num_tier2=30,
                num_edge=450,
                ixp_count=6,
                ixp_mean_members=15,
            ),
            sim=SimParams(seed=seed),
            prefix_scale=0.3,
            num_mlab=18,
            num_planetlab=14,
            mlab_as_pool=4,
            planetlab_as_pool=30,
        )
    )


def mid(seed: int = 2016) -> Scenario:
    """The dataplane-benchmark shape (~4-5k destinations, ~100 VPs).

    Large enough that a survey's probe count — not scenario build time
    — dominates the wall clock, which is what the batched-dataplane
    speedup target is measured against; still far below ``study_2016``
    so the benchmark turns around in CI-friendly time. The VP pools
    are deliberately AS-concentrated (many sites behind few upstream
    ASes, the real M-Lab/PlanetLab deployment shape [§2.2]): all the
    VPs of one ingress AS share forward paths, which is exactly the
    redundancy both the forward-path cache and the stamp-plan compiler
    exist to exploit.
    """
    return build_scenario(
        ScenarioParams(
            name="mid",
            seed=seed,
            topology=TopologyParams(
                seed=seed,
                num_tier1=6,
                num_tier2=36,
                num_edge=800,
                ixp_count=6,
                ixp_mean_members=15,
            ),
            sim=SimParams(seed=seed),
            prefix_scale=0.4,
            num_mlab=50,
            num_planetlab=50,
            mlab_as_pool=4,
            planetlab_as_pool=4,
        )
    )


def small_2011(seed: int = 2016) -> Scenario:
    """The 2011 era at ``small`` scale (for tests and the Fig 2 bench).

    Same knobs as :func:`study_2011`, shrunk to match :func:`small`:
    an extra tier-3 regional-transit layer, little peering, few colos,
    few M-Lab sites, a PlanetLab-heavy VP population.
    """
    topo_seed = derive_seed(seed, "era-2011")
    return build_scenario(
        ScenarioParams(
            name="small-2011",
            seed=topo_seed,
            topology=TopologyParams(
                seed=topo_seed,
                num_tier1=6,
                num_tier2=30,
                num_tier3=40,
                edge_via_tier3_prob=0.85,
                num_edge=450,
                flattening=0.15,
                tier2_peer_prob=0.18,
                university_peer_mean=1.0,
                university_bias=3,
                ixp_count=4,
                ixp_mean_members=10,
                colo_fraction_tier2=0.3,
                cloud_tier2_peer=(0.5, 0.35, 0.3),
                cloud_access_peer=(0.12, 0.06, 0.05),
                cloud_other_peer=(0.03, 0.02, 0.01),
            ),
            sim=SimParams(seed=topo_seed),
            prefix_scale=0.3,
            num_mlab=4,
            num_planetlab=28,
            mlab_filtered_prob=0.25,
            planetlab_filtered_prob=0.55,
            mlab_as_pool=2,
            planetlab_as_pool=28,
        )
    )


def study_2016(seed: int = 2016) -> Scenario:
    """The 2016 study shape: flattened, colo-rich, M-Lab-heavy."""
    return build_scenario(
        ScenarioParams(
            name="study-2016",
            seed=seed,
            topology=TopologyParams(seed=seed),
            sim=SimParams(seed=seed),
            prefix_scale=0.5,
            num_mlab=40,
            num_planetlab=26,
            mlab_as_pool=8,
            planetlab_as_pool=40,
        )
    )


def study_2011(seed: int = 2016) -> Scenario:
    """The 2011 counterfactual for §3.4 / Figure 2.

    Same seed lineage (so site names overlap with 2016 and "common
    VPs" are well defined) but an independent topology draw with far
    less peering, fewer colos, few M-Lab sites, and many PlanetLab
    sites — the pre-flattening Internet.
    """
    topo_seed = derive_seed(seed, "era-2011")
    return build_scenario(
        ScenarioParams(
            name="study-2011",
            seed=topo_seed,
            topology=TopologyParams(
                seed=topo_seed,
                flattening=0.15,
                num_tier3=60,
                edge_via_tier3_prob=0.85,
                tier2_peer_prob=0.18,
                university_peer_mean=1.0,
                university_bias=3,
                ixp_count=5,
                ixp_mean_members=12,
                colo_fraction_tier2=0.30,
                cloud_tier2_peer=(0.5, 0.35, 0.3),
                cloud_access_peer=(0.12, 0.06, 0.05),
                cloud_other_peer=(0.03, 0.02, 0.01),
            ),
            sim=SimParams(seed=topo_seed),
            prefix_scale=0.5,
            num_mlab=7,
            num_planetlab=60,
            mlab_filtered_prob=0.25,
            planetlab_filtered_prob=0.55,
            mlab_as_pool=3,
            planetlab_as_pool=60,
        )
    )


PRESETS = {
    "tiny": tiny,
    "small": small,
    "mid": mid,
    "small-2011": small_2011,
    "study-2016": study_2016,
    "study-2011": study_2011,
}


def get_preset(name: str, seed: int = 2016) -> Scenario:
    """Build a preset scenario by name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return factory(seed)
