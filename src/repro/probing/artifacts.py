"""Artifact integrity primitives: atomic writes + content checksums.

Every artifact this repository persists — survey JSON (plain or
gzipped), campaign checkpoints, JSONL result stores — represents
hours of (simulated) probing. A half-written or bit-rotted file must
therefore never masquerade as data. Two primitives, shared by every
writer:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` — the single
  write-rename helper. Content lands in a same-directory temp file,
  is flushed and fsynced, then atomically ``os.replace``d over the
  destination, so readers (and crashed writers) only ever observe a
  complete old file or a complete new file, never a torn one.
* :func:`embed_checksum` / :func:`split_checksum` /
  :func:`checksum_of` — an embedded sha256 over the *canonical* JSON
  bytes of the record (sorted keys, compact separators, checksum field
  excluded). Writers embed it; loaders recompute and compare, so
  corruption that still parses as JSON (a truncated-then-padded copy,
  a flipped digit) is caught before it poisons an analysis. Artifacts
  written before checksums existed simply lack the field and still
  load.

Verification outcomes are counted in the process-wide metrics
registry (``artifact_checksum_verified_total`` /
``artifact_checksum_failures_total`` by artifact kind) and surface in
``repro stats --health``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.obs.metrics import CounterFamily, MetricsRegistry, REGISTRY

__all__ = [
    "CHECKSUM_KEY",
    "append_text_line",
    "atomic_write_bytes",
    "atomic_write_text",
    "canonical_json_bytes",
    "checksum_of",
    "embed_checksum",
    "split_checksum",
    "verify_embedded_checksum",
    "checksum_verified_counter",
    "checksum_failure_counter",
]

#: The reserved top-level key carrying the embedded content digest.
CHECKSUM_KEY = "sha256"


def checksum_verified_counter(registry: MetricsRegistry) -> CounterFamily:
    """``artifact_checksum_verified_total{kind}`` — loads that checked out."""
    return registry.counter(
        "artifact_checksum_verified_total",
        "Artifact loads whose embedded content checksum verified.",
        ("kind",),
    )


def checksum_failure_counter(registry: MetricsRegistry) -> CounterFamily:
    """``artifact_checksum_failures_total{kind}`` — corruption caught."""
    return registry.counter(
        "artifact_checksum_failures_total",
        "Artifact loads rejected for an embedded-checksum mismatch.",
        ("kind",),
    )


# ---------------------------------------------------------------------------
# The one atomic write-rename helper.
# ---------------------------------------------------------------------------


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory so the final
    rename never crosses a filesystem boundary. The file descriptor is
    fsynced before the rename; a crash at any point leaves either the
    previous complete file or the new complete file.
    """
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        # A crash between write and replace leaves the temp file; a
        # success leaves nothing. Either way, don't litter.
        if tmp.exists():  # pragma: no cover - crash-path hygiene
            try:
                tmp.unlink()
            except OSError:
                pass


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Atomic text write (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))


def append_text_line(
    path: Union[str, Path], line: str, encoding: str = "utf-8"
) -> None:
    """Durably append one line to a streaming artifact.

    The record-at-a-time sibling of :func:`atomic_write_text`: flush +
    fsync after each line, so a crash can truncate the file mid-line
    at worst — never reorder or interleave records. Readers pair this
    with a recovery pass that drops a torn final line (see
    ``repro.service.streams``).
    """
    with open(path, "a", encoding=encoding, newline="") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


# ---------------------------------------------------------------------------
# Embedded content checksums over canonical JSON bytes.
# ---------------------------------------------------------------------------


def canonical_json_bytes(record: Dict) -> bytes:
    """The canonical serialisation checksums are computed over.

    Sorted keys + compact separators: any dict that parses back to the
    same data canonicalises to the same bytes, so a load can recompute
    the digest of what it parsed and compare against the embedded one.
    """
    return json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def checksum_of(record: Dict) -> str:
    """sha256 hex digest of ``record``'s canonical bytes (checksum
    field excluded, if present)."""
    body = {k: v for k, v in record.items() if k != CHECKSUM_KEY}
    return hashlib.sha256(canonical_json_bytes(body)).hexdigest()


def embed_checksum(record: Dict) -> Dict:
    """A copy of ``record`` carrying its own content digest."""
    body = {k: v for k, v in record.items() if k != CHECKSUM_KEY}
    out = dict(body)
    out[CHECKSUM_KEY] = checksum_of(body)
    return out


def split_checksum(record: Dict) -> Tuple[Dict, Optional[str]]:
    """``(body, stored_digest)`` — digest is ``None`` for legacy
    artifacts written before checksums existed."""
    if CHECKSUM_KEY not in record:
        return record, None
    body = {k: v for k, v in record.items() if k != CHECKSUM_KEY}
    return body, record[CHECKSUM_KEY]


def verify_embedded_checksum(
    record: Dict, kind: str = "artifact",
    registry: Optional[MetricsRegistry] = None,
) -> Tuple[Dict, Optional[str]]:
    """Verify ``record``'s embedded digest, if present.

    Returns ``(body, error_reason)``: ``error_reason`` is ``None``
    when the digest matched (or was absent — legacy artifacts), else a
    human-readable mismatch description. Outcomes are counted in the
    metrics registry by ``kind``.
    """
    registry = REGISTRY if registry is None else registry
    body, stored = split_checksum(record)
    if stored is None:
        return body, None
    actual = checksum_of(body)
    if actual != stored:
        checksum_failure_counter(registry).labels(kind).inc()
        return body, (
            "content checksum mismatch: artifact is corrupt "
            f"(embedded {str(stored)[:12]}…, computed {actual[:12]}…)"
        )
    checksum_verified_counter(registry).labels(kind).inc()
    return body, None
