"""Measurement tooling: vantage points, the prober, schedules, storage."""

from repro.probing.prober import DEFAULT_PPS, Prober
from repro.probing.results import (
    PingResult,
    RRPingResult,
    RRUdpResult,
    TracerouteResult,
    TsPingResult,
)
from repro.probing.scheduler import (
    ProbeOrder,
    order_destinations,
    split_round_robin,
)
from repro.probing.store import ResultStore, dump_results, load_results
from repro.probing.warts import WartsReader, WartsStore, WartsWriter
from repro.probing.vantage import SITE_CITIES, Platform, VantagePoint, vp_addr

__all__ = [
    "DEFAULT_PPS",
    "Prober",
    "PingResult",
    "RRPingResult",
    "RRUdpResult",
    "TracerouteResult",
    "TsPingResult",
    "ProbeOrder",
    "order_destinations",
    "split_round_robin",
    "ResultStore",
    "dump_results",
    "load_results",
    "WartsReader",
    "WartsStore",
    "WartsWriter",
    "SITE_CITIES",
    "Platform",
    "VantagePoint",
    "vp_addr",
]
