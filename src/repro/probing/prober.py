"""The prober: this repository's scamper.

Every measurement the paper issues exists here as a method:

* :meth:`Prober.ping` — plain ICMP echo rounds (the USC study);
* :meth:`Prober.ping_rr` — ping with the Record Route option, with a
  configurable initial TTL (§4.2) and slot count;
* :meth:`Prober.ping_rr_udp` — UDP to a high port with RR enabled, to
  harvest quoted headers from port-unreachable errors (§3.3);
* :meth:`Prober.traceroute` — one ICMP probe per TTL (§3.5, §3.6);
* :meth:`Prober.batch_ping_rr` — a paced batch at a chosen pps, the
  unit of §4.1's rate-limiting experiments.

Probes are serialised to real packet bytes and replies parsed back
from bytes, so the wire formats in :mod:`repro.net` are exercised by
every single measurement. Pacing advances the simulated clock by
``1/pps`` per probe, which is what router token buckets see.

A locally-filtered VP (site firewall drops options packets) sends
plain pings fine but gets nothing back for any probe carrying options
— the paper's "filtered locally" case.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.net.icmp import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    ICMP_TIME_EXCEEDED,
    CODE_PORT_UNREACH,
    IcmpDecodeError,
    IcmpEcho,
    IcmpError,
    ICMP_ECHO_REQUEST,
    parse_icmp,
)
from repro.net.options import RR_MAX_SLOTS, RecordRouteOption
from repro.net.packet import (
    DEFAULT_TTL,
    IPv4Packet,
    PROTO_ICMP,
    PROTO_UDP,
    PacketDecodeError,
)
from repro.net.udp import HIGH_PORT_FLOOR, UdpDatagram
from repro.net.timestamp import TimestampOption, TsFlag
from repro.obs.metrics import REGISTRY
from repro.obs.spans import TRACER as _TRACER
from repro.probing.results import (
    PingResult,
    RRPingResult,
    RRUdpResult,
    TracerouteResult,
    TsPingResult,
)
from repro.probing.vantage import VantagePoint
from repro.net.addr import same_slash24
from repro.sim.network import Network
from repro.sim.stampplan import KIND_PING, KIND_RR, Outcome
from repro.topology.hitlist import Destination

__all__ = ["Prober", "DEFAULT_PPS"]

#: The paper's main-study probing rate (§3.1).
DEFAULT_PPS = 20.0

#: Abort a traceroute after this many consecutive silent hops.
_GAP_LIMIT = 6

#: Upper bound on the per-(network, probe-type) metrics cache. Probe
#: types are a small closed set, but fixtures that re-point one prober
#: at many networks would otherwise grow the cache without limit.
_MX_CACHE_MAX = 64

#: The shared outcome for every probe a locally-filtered VP "sends":
#: the site firewall eats it before the network sees anything, so no
#: counter moves and no draw is consumed (the legacy early return).
_FILTERED_OUTCOME = Outcome()


def _outcome_from_result(result: RRPingResult) -> Outcome:
    """Adapt a legacy :class:`RRPingResult` to the batch row shape.

    The per-destination fallback path (non-hitlist address, per-hop
    tracer attached) still probes through the legacy walk; this wraps
    its result so survey code consumes one shape. Counters were already
    incremented inline by the legacy path, so the outcome carries none.
    """
    inprefix: List[int] = []
    seen = set()
    for addr in result.rr_hops:
        if (
            addr != result.dst
            and addr not in seen
            and same_slash24(addr, result.dst)
        ):
            seen.add(addr)
            inprefix.append(addr)
    return Outcome(
        responded=result.responded,
        reply_has_rr=result.reply_has_rr,
        rr=tuple(result.rr_hops),
        dest_slot=result.dest_slot(),
        inprefix=tuple(inprefix),
        ttl_exceeded=result.ttl_exceeded,
        error_source=result.error_source,
        quoted=tuple(result.quoted_rr_hops),
    )


class _ProbeMetrics:
    """Pre-resolved registry children for one (network, probe-type).

    Resolving labels once per type keeps the per-probe cost at plain
    bound-method increments — no label lookups, no allocations.
    """

    __slots__ = ("probes", "replies", "timeouts", "rtt")

    def __init__(self, net_id: str, ptype: str) -> None:
        self.probes = REGISTRY.counter(
            "probe_sent_total",
            "Probes issued, by probe type.",
            ("net", "type"),
        ).labels(net_id, ptype)
        self.replies = REGISTRY.counter(
            "probe_replies_total",
            "Probe replies successfully parsed, by probe type.",
            ("net", "type"),
        ).labels(net_id, ptype)
        self.timeouts = REGISTRY.counter(
            "probe_timeouts_total",
            "Probes that produced no (parseable) reply, by probe type.",
            ("net", "type"),
        ).labels(net_id, ptype)
        self.rtt = REGISTRY.histogram(
            "probe_rtt_sim_seconds",
            "Sim-clock seconds from probe issue (pacing included) to "
            "reply; pacing-dominated until propagation delay is modeled.",
            ("net", "type"),
        ).labels(net_id, ptype)


class Prober:
    """Issues probes from vantage points through a simulated network."""

    def __init__(self, network: Network, default_pps: float = DEFAULT_PPS):
        if default_pps <= 0:
            raise ValueError(f"pps must be positive: {default_pps}")
        self.network = network
        self.default_pps = default_pps
        #: Batched dataplane switch: when True (default), the batch
        #: APIs replay compiled stamp plans instead of walking packets
        #: hop-by-hop. Byte-identical output either way — flip off to
        #: benchmark the legacy walk or to bisect a parity suspicion.
        self.batching = True
        self._ident = 0
        self._seq = 0
        #: Per-probe span events are sampled: 0 (default) records
        #: none; N records one event per N probes onto the innermost
        #: open span. Costs one falsy check per probe when off.
        self.span_sample = 0
        self._span_seen = 0
        #: (net_id, probe type) -> pre-resolved registry children.
        #: Keyed by the network's *label value*, not the object, so a
        #: prober re-pointed at a new ``Network`` (or back at an old
        #: one) always counts against the right ``net`` label and
        #: never keeps the previous network alive through a stale
        #: reference. Bounded: see :data:`_MX_CACHE_MAX`.
        self._mx: dict = {}

    # -- plumbing ---------------------------------------------------------

    def _next_ids(self) -> tuple:
        self._ident = (self._ident + 1) & 0xFFFF
        self._seq = (self._seq + 1) & 0xFFFF
        return self._ident, self._seq

    def _metrics_for(self, ptype: str) -> _ProbeMetrics:
        """Per-(network, probe-type) registry children.

        The key includes ``network.net_id`` so swapping ``.network``
        (as some fixtures do) re-resolves the children under the new
        label instead of silently incrementing the old network's
        series. Growth is bounded: the cache is cleared wholesale if a
        pathological caller cycles through many networks (children
        re-resolve from the registry in O(1), so this is cheap).
        """
        key = (self.network.net_id, ptype)
        metrics = self._mx.get(key)
        if metrics is None:
            if len(self._mx) >= _MX_CACHE_MAX:
                self._mx.clear()
            metrics = _ProbeMetrics(self.network.net_id, ptype)
            self._mx[key] = metrics
        return metrics

    def _roundtrip(
        self, pkt: IPv4Packet, pps: Optional[float], ptype: str = "ping"
    ) -> Optional[IPv4Packet]:
        """Pace, serialise, inject, and parse any reply."""
        metrics = self._metrics_for(ptype)
        rate = self.default_pps if pps is None else pps
        clock = self.network.clock
        start = clock.now
        clock.advance(1.0 / rate)
        metrics.probes.inc()
        reply: Optional[IPv4Packet] = None
        reply_bytes = self.network.send_wire(pkt.to_bytes())
        if reply_bytes is None:
            metrics.timeouts.inc()
        else:
            try:
                reply = IPv4Packet.from_bytes(reply_bytes)
            except PacketDecodeError:  # pragma: no cover - defensive
                metrics.timeouts.inc()
            else:
                metrics.replies.inc()
                metrics.rtt.observe(clock.now - start)
        if self.span_sample and _TRACER.enabled:
            self._span_seen += 1
            if self._span_seen >= self.span_sample:
                self._span_seen = 0
                _TRACER.event(
                    "probe",
                    sim=clock.now,
                    ptype=ptype,
                    dst=pkt.dst,
                    replied=reply is not None,
                )
        return reply

    # -- plain ping ---------------------------------------------------------

    def ping(
        self,
        vp: VantagePoint,
        dst: int,
        count: int = 3,
        pps: Optional[float] = None,
    ) -> PingResult:
        """Send ``count`` plain Echo Requests; stop early on a reply."""
        replies = 0
        reply_ident: Optional[int] = None
        reply_time: Optional[float] = None
        sent = 0
        for _ in range(count):
            ident, seq = self._next_ids()
            pkt = IPv4Packet(
                src=vp.addr,
                dst=dst,
                proto=PROTO_ICMP,
                ttl=DEFAULT_TTL,
                ident=ident,
                payload=IcmpEcho(ICMP_ECHO_REQUEST, ident, seq).to_bytes(),
            )
            sent += 1
            reply = self._roundtrip(pkt, pps, "ping")
            if reply is None or reply.proto != PROTO_ICMP:
                continue
            try:
                kind, _message = parse_icmp(reply.payload)
            except IcmpDecodeError:
                continue
            if kind == ICMP_ECHO_REPLY:
                replies += 1
                reply_ident = reply.ident
                reply_time = self.network.clock.now
                break
        return PingResult(
            vp_name=vp.name,
            dst=dst,
            sent=sent,
            replies=replies,
            reply_ident=reply_ident,
            reply_time=reply_time,
        )

    # -- ping-RR ---------------------------------------------------------

    def ping_rr(
        self,
        vp: VantagePoint,
        dst: int,
        slots: int = RR_MAX_SLOTS,
        ttl: int = DEFAULT_TTL,
        pps: Optional[float] = None,
    ) -> RRPingResult:
        """One Echo Request carrying a Record Route option."""
        if vp.local_filtered:
            return RRPingResult(
                vp_name=vp.name, dst=dst, responded=False, rr_slots=slots
            )
        ident, seq = self._next_ids()
        pkt = IPv4Packet(
            src=vp.addr,
            dst=dst,
            proto=PROTO_ICMP,
            ttl=ttl,
            ident=ident,
            options=[RecordRouteOption(slots=slots)],
            payload=IcmpEcho(ICMP_ECHO_REQUEST, ident, seq).to_bytes(),
        )
        reply = self._roundtrip(pkt, pps, "rr")
        if reply is None or reply.proto != PROTO_ICMP:
            return RRPingResult(
                vp_name=vp.name, dst=dst, responded=False, rr_slots=slots
            )
        try:
            kind, message = parse_icmp(reply.payload)
        except IcmpDecodeError:  # pragma: no cover - defensive
            return RRPingResult(
                vp_name=vp.name, dst=dst, responded=False, rr_slots=slots
            )
        if kind == ICMP_ECHO_REPLY:
            rr = reply.record_route
            return RRPingResult(
                vp_name=vp.name,
                dst=dst,
                responded=True,
                rr_hops=list(rr.recorded) if rr is not None else [],
                rr_slots=slots,
                reply_has_rr=rr is not None,
            )
        if kind == ICMP_TIME_EXCEEDED and isinstance(message, IcmpError):
            quoted = message.quoted_packet()
            quoted_rr = quoted.record_route if quoted is not None else None
            return RRPingResult(
                vp_name=vp.name,
                dst=dst,
                responded=False,
                rr_slots=slots,
                ttl_exceeded=True,
                error_source=reply.src,
                quoted_rr_hops=(
                    list(quoted_rr.recorded) if quoted_rr is not None else []
                ),
            )
        return RRPingResult(
            vp_name=vp.name, dst=dst, responded=False, rr_slots=slots
        )

    # -- ping-TS ---------------------------------------------------------

    def ping_ts(
        self,
        vp: VantagePoint,
        dst: int,
        flag: TsFlag = TsFlag.TS_ONLY,
        slots: Optional[int] = None,
        prespecified: Optional[Sequence[int]] = None,
        pps: Optional[float] = None,
    ) -> TsPingResult:
        """One Echo Request carrying an IP Timestamp option.

        With ``flag=TS_PRESPEC`` pass the addresses to prespecify; a
        filled slot in the result confirms the named device sits on the
        round-trip path (reverse traceroute's on-path test [11]).
        """
        if vp.local_filtered:
            return TsPingResult(
                vp_name=vp.name, dst=dst, responded=False, flag=int(flag)
            )
        if flag is TsFlag.TS_PRESPEC:
            if not prespecified:
                raise ValueError("TS_PRESPEC needs prespecified addresses")
            option = TimestampOption.prespecified(list(prespecified))
        else:
            default_slots = 9 if flag is TsFlag.TS_ONLY else 4
            option = TimestampOption(
                flag=flag, slots=slots or default_slots
            )
        ident, seq = self._next_ids()
        pkt = IPv4Packet(
            src=vp.addr,
            dst=dst,
            proto=PROTO_ICMP,
            ttl=DEFAULT_TTL,
            ident=ident,
            options=[option],
            payload=IcmpEcho(ICMP_ECHO_REQUEST, ident, seq).to_bytes(),
        )
        reply = self._roundtrip(pkt, pps, "ts")
        if reply is None or reply.proto != PROTO_ICMP:
            return TsPingResult(
                vp_name=vp.name, dst=dst, responded=False, flag=int(flag)
            )
        try:
            kind, _message = parse_icmp(reply.payload)
        except IcmpDecodeError:  # pragma: no cover - defensive
            kind = None
        if kind != ICMP_ECHO_REPLY:
            return TsPingResult(
                vp_name=vp.name, dst=dst, responded=False, flag=int(flag)
            )
        reply_ts = reply.timestamp_option
        return TsPingResult(
            vp_name=vp.name,
            dst=dst,
            responded=True,
            flag=int(flag),
            entries=(
                [list(entry) for entry in reply_ts.entries]
                if reply_ts is not None
                else []
            ),
            overflow=reply_ts.overflow if reply_ts is not None else 0,
            reply_has_ts=reply_ts is not None,
        )

    # -- ping-RRudp ---------------------------------------------------------

    def ping_rr_udp(
        self,
        vp: VantagePoint,
        dst: int,
        slots: int = RR_MAX_SLOTS,
        pps: Optional[float] = None,
    ) -> RRUdpResult:
        """UDP to a high port with RR enabled; reads the quoted error."""
        if vp.local_filtered:
            return RRUdpResult(vp_name=vp.name, dst=dst, got_unreachable=False)
        ident, seq = self._next_ids()
        datagram = UdpDatagram(
            src_port=40000 + (ident % 20000),
            dst_port=HIGH_PORT_FLOOR + (seq % 1000),
        )
        pkt = IPv4Packet(
            src=vp.addr,
            dst=dst,
            proto=PROTO_UDP,
            ttl=DEFAULT_TTL,
            ident=ident,
            options=[RecordRouteOption(slots=slots)],
            payload=datagram.to_bytes(vp.addr, dst),
        )
        reply = self._roundtrip(pkt, pps, "rrudp")
        if reply is None or reply.proto != PROTO_ICMP:
            return RRUdpResult(vp_name=vp.name, dst=dst, got_unreachable=False)
        try:
            kind, message = parse_icmp(reply.payload)
        except IcmpDecodeError:  # pragma: no cover - defensive
            return RRUdpResult(vp_name=vp.name, dst=dst, got_unreachable=False)
        if (
            kind != ICMP_DEST_UNREACH
            or not isinstance(message, IcmpError)
            or message.code != CODE_PORT_UNREACH
        ):
            return RRUdpResult(vp_name=vp.name, dst=dst, got_unreachable=False)
        quoted = message.quoted_packet()
        quoted_rr = quoted.record_route if quoted is not None else None
        return RRUdpResult(
            vp_name=vp.name,
            dst=dst,
            got_unreachable=True,
            quoted_rr_hops=(
                list(quoted_rr.recorded) if quoted_rr is not None else []
            ),
            quoted_slots=quoted_rr.slots if quoted_rr is not None else None,
            error_source=reply.src,
        )

    # -- traceroute ---------------------------------------------------------

    def traceroute(
        self,
        vp: VantagePoint,
        dst: int,
        max_ttl: int = 32,
        attempts: int = 2,
        pps: Optional[float] = None,
    ) -> TracerouteResult:
        """ICMP traceroute: one (retryable) probe per TTL."""
        hops: List[Optional[int]] = []
        gap = 0
        for ttl in range(1, max_ttl + 1):
            hop_addr: Optional[int] = None
            reached = False
            for _attempt in range(attempts):
                ident, seq = self._next_ids()
                pkt = IPv4Packet(
                    src=vp.addr,
                    dst=dst,
                    proto=PROTO_ICMP,
                    ttl=ttl,
                    ident=ident,
                    payload=IcmpEcho(
                        ICMP_ECHO_REQUEST, ident, seq
                    ).to_bytes(),
                )
                reply = self._roundtrip(pkt, pps, "trace")
                if reply is None or reply.proto != PROTO_ICMP:
                    continue
                try:
                    kind, _message = parse_icmp(reply.payload)
                except IcmpDecodeError:  # pragma: no cover - defensive
                    continue
                if kind == ICMP_ECHO_REPLY:
                    hop_addr = reply.src
                    reached = True
                elif kind == ICMP_TIME_EXCEEDED:
                    hop_addr = reply.src
                if hop_addr is not None:
                    break
            hops.append(hop_addr)
            if reached:
                return TracerouteResult(
                    vp_name=vp.name, dst=dst, hops=hops, reached=True
                )
            gap = gap + 1 if hop_addr is None else 0
            if gap >= _GAP_LIMIT:
                break
        return TracerouteResult(
            vp_name=vp.name, dst=dst, hops=hops, reached=False
        )

    # -- batched dataplane -------------------------------------------------

    def _can_batch(self) -> bool:
        """Whole-batch gate for the stamp-plan replay engine.

        A per-hop packet tracer needs the real walk (plans have no
        hops to emit), so its presence routes the batch through the
        legacy path wholesale — as does flipping ``batching`` off.
        """
        return self.batching and self.network.tracer is None

    def _batch_rr(
        self,
        vp: VantagePoint,
        targets: Sequence[Tuple[int, Optional[Destination]]],
        slots: int,
        ttl: int,
        pps: Optional[float],
        heartbeat: Optional[Callable[[], None]],
    ) -> List[Outcome]:
        """Replay one VP's ping-RR sequence through compiled plans.

        ``targets`` pairs each probed address with its hitlist
        ``Destination`` (``None`` sends that one probe down the legacy
        walk — addresses outside the hitlist can be routers or voids,
        which plans don't model). Every probe consumes exactly the
        clock advance, token-bucket draws, and loss-stream draws the
        legacy walk would, in the same order, so mixing replayed and
        fallback probes within one batch cannot shift a single byte.

        Counters, ident/seq draws, and per-AS options load are folded
        into one add per batch in a ``finally`` block: a supervision
        heartbeat raising mid-batch (injected hangs) leaves exactly the
        completed probes' state behind, as the legacy loop would.
        """
        network = self.network
        out: List[Outcome] = []
        if vp.local_filtered:
            for _ in targets:
                if heartbeat is not None:
                    heartbeat()
                out.append(_FILTERED_OUTCOME)
            return out
        src_asn = vp.addr >> 16
        if src_asn not in network.graph:
            # A source outside the AS graph can't be planned (the walk
            # drops it at injection); keep the legacy path's behaviour.
            for addr, _dest in targets:
                if heartbeat is not None:
                    heartbeat()
                out.append(_outcome_from_result(
                    self.ping_rr(vp, addr, slots=slots, ttl=ttl, pps=pps)
                ))
            return out
        metrics = self._metrics_for("rr")
        clock = network.clock
        injector = network._injector
        lost = network._lost
        rtt_observe = metrics.rtt.observe
        out_append = out.append
        dt = 1.0 / (self.default_pps if pps is None else pps)
        span_on = bool(self.span_sample) and _TRACER.enabled
        plans = network._plans
        base_key = (KIND_RR, slots, ttl, None)
        n = replied_n = lookups = plan_hits = 0
        counts: dict = {}
        # The sim clock stays in a local for the whole batch (same
        # float additions as SimClock.advance, so bit-equal times) and
        # is written back around fallback probes and in the finally:
        # an exception mid-batch leaves the clock exactly where the
        # legacy per-probe loop would have.
        now = clock.now
        try:
            for addr, dest in targets:
                if heartbeat is not None:
                    heartbeat()
                if dest is None:
                    clock._now = now
                    out_append(_outcome_from_result(
                        self.ping_rr(vp, addr, slots=slots, ttl=ttl, pps=pps)
                    ))
                    now = clock.now
                    continue
                start = now
                now += dt
                n += 1
                lookups += 1
                key = (src_asn, addr)
                plan = plans.get(key)
                if plan is None:
                    plan = network._plan_miss(key, src_asn, dest)
                else:
                    plan_hits += 1
                    plans.move_to_end(key)
                if injector is None:
                    tkey = base_key
                else:
                    flapset = injector.active_flap_edges(now)
                    tkey = (KIND_RR, slots, ttl, flapset or None)
                if tkey == plan.fast_key:
                    template = plan.fast_tpl
                else:
                    template = plan.template(
                        network, KIND_RR, slots, ttl, tkey[3]
                    )
                outcome = template.final
                ops = template.ops
                if ops:
                    for op in ops:
                        router = op[0]
                        if router is None:
                            if lost():
                                outcome = op[3]
                                break
                        else:
                            limiter = op[2]
                            if limiter is None:
                                limiter = network._limiter_of(router, op[1])
                                op[2] = limiter
                            if not limiter.allow(now):
                                outcome = op[3]
                                break
                counts[outcome] = counts.get(outcome, 0) + 1
                if outcome.replied:
                    replied_n += 1
                    rtt_observe(now - start)
                if span_on:
                    self._span_seen += 1
                    if self._span_seen >= self.span_sample:
                        self._span_seen = 0
                        _TRACER.event(
                            "probe",
                            sim=now,
                            ptype="rr",
                            dst=addr,
                            replied=outcome.replied,
                        )
                out_append(outcome)
        finally:
            clock._now = now
            if n:
                self._fold(
                    metrics, network, counts,
                    n, replied_n, lookups, plan_hits,
                )
        return out

    def _batch_ping(
        self,
        vp: VantagePoint,
        targets: Sequence[Tuple[int, Optional[Destination]]],
        count: int,
        pps: Optional[float],
        heartbeat: Optional[Callable[[], None]],
    ) -> List[PingResult]:
        """Replay plain-ping rounds (count attempts, early stop) through
        compiled plans; see :meth:`_batch_rr` for the parity contract."""
        network = self.network
        out: List[PingResult] = []
        src_asn = vp.addr >> 16
        if src_asn not in network.graph:
            for addr, _dest in targets:
                if heartbeat is not None:
                    heartbeat()
                out.append(self.ping(vp, addr, count=count, pps=pps))
            return out
        metrics = self._metrics_for("ping")
        clock = network.clock
        injector = network._injector
        lost = network._lost
        rtt_observe = metrics.rtt.observe
        dt = 1.0 / (self.default_pps if pps is None else pps)
        span_on = bool(self.span_sample) and _TRACER.enabled
        plans = network._plans
        base_key = (KIND_PING, 0, DEFAULT_TTL, None)
        n = replied_n = lookups = plan_hits = 0
        counts: dict = {}
        # Local sim clock, as in _batch_rr: synced around fallbacks
        # and in the finally so partial batches match the legacy loop.
        now = clock.now
        try:
            for addr, dest in targets:
                if heartbeat is not None:
                    heartbeat()
                if dest is None:
                    clock._now = now
                    out.append(self.ping(vp, addr, count=count, pps=pps))
                    now = clock.now
                    continue
                sent = 0
                replies = 0
                reply_ident: Optional[int] = None
                reply_time: Optional[float] = None
                for _attempt in range(count):
                    start = now
                    now += dt
                    sent += 1
                    n += 1
                    lookups += 1
                    key = (src_asn, addr)
                    plan = plans.get(key)
                    if plan is None:
                        plan = network._plan_miss(key, src_asn, dest)
                    else:
                        plan_hits += 1
                        plans.move_to_end(key)
                    if injector is None:
                        tkey = base_key
                    else:
                        flapset = injector.active_flap_edges(now)
                        tkey = (KIND_PING, 0, DEFAULT_TTL, flapset or None)
                    if tkey == plan.fast_key:
                        template = plan.fast_tpl
                    else:
                        template = plan.template(
                            network, KIND_PING, 0, DEFAULT_TTL, tkey[3]
                        )
                    outcome = template.final
                    ops = template.ops
                    if ops:
                        for op in ops:
                            router = op[0]
                            if router is None:
                                if lost():
                                    outcome = op[3]
                                    break
                            else:
                                limiter = op[2]
                                if limiter is None:
                                    limiter = network._limiter_of(
                                        router, op[1]
                                    )
                                    op[2] = limiter
                                if not limiter.allow(now):
                                    outcome = op[3]
                                    break
                    counts[outcome] = counts.get(outcome, 0) + 1
                    if outcome.replied:
                        replied_n += 1
                        rtt_observe(now - start)
                    if span_on:
                        self._span_seen += 1
                        if self._span_seen >= self.span_sample:
                            self._span_seen = 0
                            _TRACER.event(
                                "probe",
                                sim=now,
                                ptype="ping",
                                dst=addr,
                                replied=outcome.replied,
                            )
                    if outcome.responded:
                        replies = 1
                        reply_ident = plan.host.ipid(now)
                        reply_time = now
                        break
                out.append(PingResult(
                    vp_name=vp.name,
                    dst=addr,
                    sent=sent,
                    replies=replies,
                    reply_ident=reply_ident,
                    reply_time=reply_time,
                ))
        finally:
            clock._now = now
            if n:
                self._fold(
                    metrics, network, counts,
                    n, replied_n, lookups, plan_hits,
                )
        return out

    def _fold(
        self,
        metrics: _ProbeMetrics,
        network: Network,
        counts: dict,
        n: int,
        replied_n: int,
        lookups: int,
        plan_hits: int,
    ) -> None:
        """One batch's deferred accounting, applied as single adds.

        ``counts`` maps each distinct :class:`Outcome` to how many
        probes shared that fate this batch; its per-probe counter and
        options-load contributions expand here by multiplication.
        Everything is commutative integer arithmetic, so deferring it
        cannot change any total the legacy per-probe path produces —
        only the number of Python-level increments (the point).
        """
        metrics.probes.inc(n)
        if replied_n:
            metrics.replies.inc(replied_n)
        if n > replied_n:
            metrics.timeouts.inc(n - replied_n)
        # Each replayed probe would have drawn one (ident, seq) pair.
        self._ident = (self._ident + n) & 0xFFFF
        self._seq = (self._seq + n) & 0xFFFF
        network._plan_hits.inc(plan_hits)
        network._plan_misses.inc(lookups - plan_hits)
        # A plan-cache hit skipped the _forward_path call the legacy
        # walk performs per probe; fold the hits it would have counted
        # (compiles run _forward_path themselves, covering the misses).
        if plan_hits:
            network._path_hits.inc(plan_hits)
        network._plan_replays.inc(n)
        tally: dict = {}
        load: dict = {}
        for outcome, times in counts.items():
            for counter in outcome.counters:
                tally[counter] = tally.get(counter, 0) + times
            for asn, cnt in outcome.load:
                load[asn] = load.get(asn, 0) + cnt * times
        for counter, count in tally.items():
            counter.inc(count)
        options_load = network.options_load
        for asn, count in load.items():
            options_load[asn] = options_load.get(asn, 0) + count

    def _resolve_targets(
        self, dests: Iterable[int]
    ) -> List[Tuple[int, Optional[Destination]]]:
        """Pair each probed address with its hitlist destination.

        Resolution goes through ``hitlist.by_addr`` — the same lookup
        ``send_packet`` performs — so a plan is always compiled for the
        *stored* destination, even if a caller hands in a look-alike.
        """
        by_addr = self.network.hitlist.by_addr
        return [(addr, by_addr(addr)) for addr in dests]

    def probe_batch_rows(
        self,
        vp: VantagePoint,
        dests: Sequence[Destination],
        slots: int = RR_MAX_SLOTS,
        ttl: int = DEFAULT_TTL,
        pps: Optional[float] = None,
        heartbeat: Optional[Callable[[], None]] = None,
        round_no: int = 0,
    ) -> List[Tuple[Destination, Outcome]]:
        """The survey-facing batch: raw outcomes, no result objects.

        Returns ``(dest, outcome)`` pairs in probe order; outcomes
        carry precomputed ``rr_responsive`` / ``dest_slot`` /
        ``inprefix`` so the survey loop does dict appends and nothing
        else. Falls back to the legacy per-destination walk (wrapped in
        the same shape) when batching is off or a tracer is attached.

        ``round_no`` is the caller's retry round; misbehavior specs
        with ``sticky=False`` re-roll their hit decision per round, so
        a re-probe can legitimately come back clean.

        Misbehavior transform: when a :class:`FaultInjector` with
        misbehavior specs is attached, the finished pairs are run
        through :meth:`FaultInjector.misbehave_pairs` — a single choke
        point *after* both the batched and the legacy branch, and after
        all deferred accounting, so the taint is byte-identical
        batched-vs-legacy and never perturbs counters.
        """
        if not self._can_batch():
            pairs = []
            for dest in dests:
                if heartbeat is not None:
                    heartbeat()
                pairs.append((dest, _outcome_from_result(
                    self.ping_rr(vp, dest.addr, slots=slots, ttl=ttl, pps=pps)
                )))
        else:
            targets = self._resolve_targets(dest.addr for dest in dests)
            outcomes = self._batch_rr(vp, targets, slots, ttl, pps, heartbeat)
            pairs = list(zip(dests, outcomes))
        injector = self.network._injector
        if injector is not None and injector.has_misbehavior:
            pairs = injector.misbehave_pairs(vp.name, pairs, slots, round_no)
        return pairs

    def probe_batch_ping(
        self,
        vp: VantagePoint,
        dests: Sequence[Destination],
        count: int = 3,
        pps: Optional[float] = None,
        heartbeat: Optional[Callable[[], None]] = None,
    ) -> List[PingResult]:
        """Batched plain-ping rounds over hitlist destinations."""
        if not self._can_batch():
            results = []
            for dest in dests:
                if heartbeat is not None:
                    heartbeat()
                results.append(
                    self.ping(vp, dest.addr, count=count, pps=pps)
                )
            return results
        targets = self._resolve_targets(dest.addr for dest in dests)
        return self._batch_ping(vp, targets, count, pps, heartbeat)

    def probe_batch(
        self,
        vp: VantagePoint,
        dests: Sequence[int],
        kind: str = "rr",
        count: int = 3,
        slots: int = RR_MAX_SLOTS,
        ttl: int = DEFAULT_TTL,
        pps: Optional[float] = None,
    ) -> List:
        """Public batch API over raw addresses: full result objects.

        ``kind="rr"`` returns :class:`RRPingResult` per address,
        ``kind="ping"`` returns :class:`PingResult` — field-for-field
        what the per-probe methods would have produced, at replay cost.
        """
        if kind == "ping":
            if not self._can_batch():
                return [
                    self.ping(vp, addr, count=count, pps=pps)
                    for addr in dests
                ]
            return self._batch_ping(
                vp, self._resolve_targets(dests), count, pps, None
            )
        if kind != "rr":
            raise ValueError(f"unknown batch kind: {kind!r}")
        if not self._can_batch():
            return [
                self.ping_rr(vp, addr, slots=slots, ttl=ttl, pps=pps)
                for addr in dests
            ]
        outcomes = self._batch_rr(
            vp, self._resolve_targets(dests), slots, ttl, pps, None
        )
        results = []
        for addr, outcome in zip(dests, outcomes):
            if outcome.responded:
                results.append(RRPingResult(
                    vp_name=vp.name,
                    dst=addr,
                    responded=True,
                    rr_hops=list(outcome.rr),
                    rr_slots=slots,
                    reply_has_rr=outcome.reply_has_rr,
                ))
            elif outcome.ttl_exceeded:
                results.append(RRPingResult(
                    vp_name=vp.name,
                    dst=addr,
                    responded=False,
                    rr_slots=slots,
                    ttl_exceeded=True,
                    error_source=outcome.error_source,
                    quoted_rr_hops=list(outcome.quoted),
                ))
            else:
                results.append(RRPingResult(
                    vp_name=vp.name, dst=addr, responded=False,
                    rr_slots=slots,
                ))
        return results

    # -- batches ---------------------------------------------------------

    def batch_ping_rr(
        self,
        vp: VantagePoint,
        dests: Sequence[int],
        pps: Optional[float] = None,
        slots: int = RR_MAX_SLOTS,
        ttl: int = DEFAULT_TTL,
    ) -> List[RRPingResult]:
        """Probe ``dests`` in the given order at a steady ``pps``."""
        return self.probe_batch(
            vp, list(dests), kind="rr", slots=slots, ttl=ttl, pps=pps
        )

    def batch_ping(
        self,
        vp: VantagePoint,
        dests: Iterable[int],
        count: int = 3,
        pps: Optional[float] = None,
    ) -> List[PingResult]:
        return self.probe_batch(
            vp, list(dests), kind="ping", count=count, pps=pps
        )
