"""The prober: this repository's scamper.

Every measurement the paper issues exists here as a method:

* :meth:`Prober.ping` — plain ICMP echo rounds (the USC study);
* :meth:`Prober.ping_rr` — ping with the Record Route option, with a
  configurable initial TTL (§4.2) and slot count;
* :meth:`Prober.ping_rr_udp` — UDP to a high port with RR enabled, to
  harvest quoted headers from port-unreachable errors (§3.3);
* :meth:`Prober.traceroute` — one ICMP probe per TTL (§3.5, §3.6);
* :meth:`Prober.batch_ping_rr` — a paced batch at a chosen pps, the
  unit of §4.1's rate-limiting experiments.

Probes are serialised to real packet bytes and replies parsed back
from bytes, so the wire formats in :mod:`repro.net` are exercised by
every single measurement. Pacing advances the simulated clock by
``1/pps`` per probe, which is what router token buckets see.

A locally-filtered VP (site firewall drops options packets) sends
plain pings fine but gets nothing back for any probe carrying options
— the paper's "filtered locally" case.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.net.icmp import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    ICMP_TIME_EXCEEDED,
    CODE_PORT_UNREACH,
    IcmpDecodeError,
    IcmpEcho,
    IcmpError,
    ICMP_ECHO_REQUEST,
    parse_icmp,
)
from repro.net.options import RR_MAX_SLOTS, RecordRouteOption
from repro.net.packet import (
    DEFAULT_TTL,
    IPv4Packet,
    PROTO_ICMP,
    PROTO_UDP,
    PacketDecodeError,
)
from repro.net.udp import HIGH_PORT_FLOOR, UdpDatagram
from repro.net.timestamp import TimestampOption, TsFlag
from repro.obs.metrics import REGISTRY
from repro.obs.spans import TRACER as _TRACER
from repro.probing.results import (
    PingResult,
    RRPingResult,
    RRUdpResult,
    TracerouteResult,
    TsPingResult,
)
from repro.probing.vantage import VantagePoint
from repro.sim.network import Network

__all__ = ["Prober", "DEFAULT_PPS"]

#: The paper's main-study probing rate (§3.1).
DEFAULT_PPS = 20.0

#: Abort a traceroute after this many consecutive silent hops.
_GAP_LIMIT = 6

#: Upper bound on the per-(network, probe-type) metrics cache. Probe
#: types are a small closed set, but fixtures that re-point one prober
#: at many networks would otherwise grow the cache without limit.
_MX_CACHE_MAX = 64


class _ProbeMetrics:
    """Pre-resolved registry children for one (network, probe-type).

    Resolving labels once per type keeps the per-probe cost at plain
    bound-method increments — no label lookups, no allocations.
    """

    __slots__ = ("probes", "replies", "timeouts", "rtt")

    def __init__(self, net_id: str, ptype: str) -> None:
        self.probes = REGISTRY.counter(
            "probe_sent_total",
            "Probes issued, by probe type.",
            ("net", "type"),
        ).labels(net_id, ptype)
        self.replies = REGISTRY.counter(
            "probe_replies_total",
            "Probe replies successfully parsed, by probe type.",
            ("net", "type"),
        ).labels(net_id, ptype)
        self.timeouts = REGISTRY.counter(
            "probe_timeouts_total",
            "Probes that produced no (parseable) reply, by probe type.",
            ("net", "type"),
        ).labels(net_id, ptype)
        self.rtt = REGISTRY.histogram(
            "probe_rtt_sim_seconds",
            "Sim-clock seconds from probe issue (pacing included) to "
            "reply; pacing-dominated until propagation delay is modeled.",
            ("net", "type"),
        ).labels(net_id, ptype)


class Prober:
    """Issues probes from vantage points through a simulated network."""

    def __init__(self, network: Network, default_pps: float = DEFAULT_PPS):
        if default_pps <= 0:
            raise ValueError(f"pps must be positive: {default_pps}")
        self.network = network
        self.default_pps = default_pps
        self._ident = 0
        self._seq = 0
        #: Per-probe span events are sampled: 0 (default) records
        #: none; N records one event per N probes onto the innermost
        #: open span. Costs one falsy check per probe when off.
        self.span_sample = 0
        self._span_seen = 0
        #: (net_id, probe type) -> pre-resolved registry children.
        #: Keyed by the network's *label value*, not the object, so a
        #: prober re-pointed at a new ``Network`` (or back at an old
        #: one) always counts against the right ``net`` label and
        #: never keeps the previous network alive through a stale
        #: reference. Bounded: see :data:`_MX_CACHE_MAX`.
        self._mx: dict = {}

    # -- plumbing ---------------------------------------------------------

    def _next_ids(self) -> tuple:
        self._ident = (self._ident + 1) & 0xFFFF
        self._seq = (self._seq + 1) & 0xFFFF
        return self._ident, self._seq

    def _metrics_for(self, ptype: str) -> _ProbeMetrics:
        """Per-(network, probe-type) registry children.

        The key includes ``network.net_id`` so swapping ``.network``
        (as some fixtures do) re-resolves the children under the new
        label instead of silently incrementing the old network's
        series. Growth is bounded: the cache is cleared wholesale if a
        pathological caller cycles through many networks (children
        re-resolve from the registry in O(1), so this is cheap).
        """
        key = (self.network.net_id, ptype)
        metrics = self._mx.get(key)
        if metrics is None:
            if len(self._mx) >= _MX_CACHE_MAX:
                self._mx.clear()
            metrics = _ProbeMetrics(self.network.net_id, ptype)
            self._mx[key] = metrics
        return metrics

    def _roundtrip(
        self, pkt: IPv4Packet, pps: Optional[float], ptype: str = "ping"
    ) -> Optional[IPv4Packet]:
        """Pace, serialise, inject, and parse any reply."""
        metrics = self._metrics_for(ptype)
        rate = self.default_pps if pps is None else pps
        clock = self.network.clock
        start = clock.now
        clock.advance(1.0 / rate)
        metrics.probes.inc()
        reply: Optional[IPv4Packet] = None
        reply_bytes = self.network.send_wire(pkt.to_bytes())
        if reply_bytes is None:
            metrics.timeouts.inc()
        else:
            try:
                reply = IPv4Packet.from_bytes(reply_bytes)
            except PacketDecodeError:  # pragma: no cover - defensive
                metrics.timeouts.inc()
            else:
                metrics.replies.inc()
                metrics.rtt.observe(clock.now - start)
        if self.span_sample and _TRACER.enabled:
            self._span_seen += 1
            if self._span_seen >= self.span_sample:
                self._span_seen = 0
                _TRACER.event(
                    "probe",
                    sim=clock.now,
                    ptype=ptype,
                    dst=pkt.dst,
                    replied=reply is not None,
                )
        return reply

    # -- plain ping ---------------------------------------------------------

    def ping(
        self,
        vp: VantagePoint,
        dst: int,
        count: int = 3,
        pps: Optional[float] = None,
    ) -> PingResult:
        """Send ``count`` plain Echo Requests; stop early on a reply."""
        replies = 0
        reply_ident: Optional[int] = None
        reply_time: Optional[float] = None
        sent = 0
        for _ in range(count):
            ident, seq = self._next_ids()
            pkt = IPv4Packet(
                src=vp.addr,
                dst=dst,
                proto=PROTO_ICMP,
                ttl=DEFAULT_TTL,
                ident=ident,
                payload=IcmpEcho(ICMP_ECHO_REQUEST, ident, seq).to_bytes(),
            )
            sent += 1
            reply = self._roundtrip(pkt, pps, "ping")
            if reply is None or reply.proto != PROTO_ICMP:
                continue
            try:
                kind, _message = parse_icmp(reply.payload)
            except IcmpDecodeError:
                continue
            if kind == ICMP_ECHO_REPLY:
                replies += 1
                reply_ident = reply.ident
                reply_time = self.network.clock.now
                break
        return PingResult(
            vp_name=vp.name,
            dst=dst,
            sent=sent,
            replies=replies,
            reply_ident=reply_ident,
            reply_time=reply_time,
        )

    # -- ping-RR ---------------------------------------------------------

    def ping_rr(
        self,
        vp: VantagePoint,
        dst: int,
        slots: int = RR_MAX_SLOTS,
        ttl: int = DEFAULT_TTL,
        pps: Optional[float] = None,
    ) -> RRPingResult:
        """One Echo Request carrying a Record Route option."""
        if vp.local_filtered:
            return RRPingResult(
                vp_name=vp.name, dst=dst, responded=False, rr_slots=slots
            )
        ident, seq = self._next_ids()
        pkt = IPv4Packet(
            src=vp.addr,
            dst=dst,
            proto=PROTO_ICMP,
            ttl=ttl,
            ident=ident,
            options=[RecordRouteOption(slots=slots)],
            payload=IcmpEcho(ICMP_ECHO_REQUEST, ident, seq).to_bytes(),
        )
        reply = self._roundtrip(pkt, pps, "rr")
        if reply is None or reply.proto != PROTO_ICMP:
            return RRPingResult(
                vp_name=vp.name, dst=dst, responded=False, rr_slots=slots
            )
        try:
            kind, message = parse_icmp(reply.payload)
        except IcmpDecodeError:  # pragma: no cover - defensive
            return RRPingResult(
                vp_name=vp.name, dst=dst, responded=False, rr_slots=slots
            )
        if kind == ICMP_ECHO_REPLY:
            rr = reply.record_route
            return RRPingResult(
                vp_name=vp.name,
                dst=dst,
                responded=True,
                rr_hops=list(rr.recorded) if rr is not None else [],
                rr_slots=slots,
                reply_has_rr=rr is not None,
            )
        if kind == ICMP_TIME_EXCEEDED and isinstance(message, IcmpError):
            quoted = message.quoted_packet()
            quoted_rr = quoted.record_route if quoted is not None else None
            return RRPingResult(
                vp_name=vp.name,
                dst=dst,
                responded=False,
                rr_slots=slots,
                ttl_exceeded=True,
                error_source=reply.src,
                quoted_rr_hops=(
                    list(quoted_rr.recorded) if quoted_rr is not None else []
                ),
            )
        return RRPingResult(
            vp_name=vp.name, dst=dst, responded=False, rr_slots=slots
        )

    # -- ping-TS ---------------------------------------------------------

    def ping_ts(
        self,
        vp: VantagePoint,
        dst: int,
        flag: TsFlag = TsFlag.TS_ONLY,
        slots: Optional[int] = None,
        prespecified: Optional[Sequence[int]] = None,
        pps: Optional[float] = None,
    ) -> TsPingResult:
        """One Echo Request carrying an IP Timestamp option.

        With ``flag=TS_PRESPEC`` pass the addresses to prespecify; a
        filled slot in the result confirms the named device sits on the
        round-trip path (reverse traceroute's on-path test [11]).
        """
        if vp.local_filtered:
            return TsPingResult(
                vp_name=vp.name, dst=dst, responded=False, flag=int(flag)
            )
        if flag is TsFlag.TS_PRESPEC:
            if not prespecified:
                raise ValueError("TS_PRESPEC needs prespecified addresses")
            option = TimestampOption.prespecified(list(prespecified))
        else:
            default_slots = 9 if flag is TsFlag.TS_ONLY else 4
            option = TimestampOption(
                flag=flag, slots=slots or default_slots
            )
        ident, seq = self._next_ids()
        pkt = IPv4Packet(
            src=vp.addr,
            dst=dst,
            proto=PROTO_ICMP,
            ttl=DEFAULT_TTL,
            ident=ident,
            options=[option],
            payload=IcmpEcho(ICMP_ECHO_REQUEST, ident, seq).to_bytes(),
        )
        reply = self._roundtrip(pkt, pps, "ts")
        if reply is None or reply.proto != PROTO_ICMP:
            return TsPingResult(
                vp_name=vp.name, dst=dst, responded=False, flag=int(flag)
            )
        try:
            kind, _message = parse_icmp(reply.payload)
        except IcmpDecodeError:  # pragma: no cover - defensive
            kind = None
        if kind != ICMP_ECHO_REPLY:
            return TsPingResult(
                vp_name=vp.name, dst=dst, responded=False, flag=int(flag)
            )
        reply_ts = reply.timestamp_option
        return TsPingResult(
            vp_name=vp.name,
            dst=dst,
            responded=True,
            flag=int(flag),
            entries=(
                [list(entry) for entry in reply_ts.entries]
                if reply_ts is not None
                else []
            ),
            overflow=reply_ts.overflow if reply_ts is not None else 0,
            reply_has_ts=reply_ts is not None,
        )

    # -- ping-RRudp ---------------------------------------------------------

    def ping_rr_udp(
        self,
        vp: VantagePoint,
        dst: int,
        slots: int = RR_MAX_SLOTS,
        pps: Optional[float] = None,
    ) -> RRUdpResult:
        """UDP to a high port with RR enabled; reads the quoted error."""
        if vp.local_filtered:
            return RRUdpResult(vp_name=vp.name, dst=dst, got_unreachable=False)
        ident, seq = self._next_ids()
        datagram = UdpDatagram(
            src_port=40000 + (ident % 20000),
            dst_port=HIGH_PORT_FLOOR + (seq % 1000),
        )
        pkt = IPv4Packet(
            src=vp.addr,
            dst=dst,
            proto=PROTO_UDP,
            ttl=DEFAULT_TTL,
            ident=ident,
            options=[RecordRouteOption(slots=slots)],
            payload=datagram.to_bytes(vp.addr, dst),
        )
        reply = self._roundtrip(pkt, pps, "rrudp")
        if reply is None or reply.proto != PROTO_ICMP:
            return RRUdpResult(vp_name=vp.name, dst=dst, got_unreachable=False)
        try:
            kind, message = parse_icmp(reply.payload)
        except IcmpDecodeError:  # pragma: no cover - defensive
            return RRUdpResult(vp_name=vp.name, dst=dst, got_unreachable=False)
        if (
            kind != ICMP_DEST_UNREACH
            or not isinstance(message, IcmpError)
            or message.code != CODE_PORT_UNREACH
        ):
            return RRUdpResult(vp_name=vp.name, dst=dst, got_unreachable=False)
        quoted = message.quoted_packet()
        quoted_rr = quoted.record_route if quoted is not None else None
        return RRUdpResult(
            vp_name=vp.name,
            dst=dst,
            got_unreachable=True,
            quoted_rr_hops=(
                list(quoted_rr.recorded) if quoted_rr is not None else []
            ),
            quoted_slots=quoted_rr.slots if quoted_rr is not None else None,
            error_source=reply.src,
        )

    # -- traceroute ---------------------------------------------------------

    def traceroute(
        self,
        vp: VantagePoint,
        dst: int,
        max_ttl: int = 32,
        attempts: int = 2,
        pps: Optional[float] = None,
    ) -> TracerouteResult:
        """ICMP traceroute: one (retryable) probe per TTL."""
        hops: List[Optional[int]] = []
        gap = 0
        for ttl in range(1, max_ttl + 1):
            hop_addr: Optional[int] = None
            reached = False
            for _attempt in range(attempts):
                ident, seq = self._next_ids()
                pkt = IPv4Packet(
                    src=vp.addr,
                    dst=dst,
                    proto=PROTO_ICMP,
                    ttl=ttl,
                    ident=ident,
                    payload=IcmpEcho(
                        ICMP_ECHO_REQUEST, ident, seq
                    ).to_bytes(),
                )
                reply = self._roundtrip(pkt, pps, "trace")
                if reply is None or reply.proto != PROTO_ICMP:
                    continue
                try:
                    kind, _message = parse_icmp(reply.payload)
                except IcmpDecodeError:  # pragma: no cover - defensive
                    continue
                if kind == ICMP_ECHO_REPLY:
                    hop_addr = reply.src
                    reached = True
                elif kind == ICMP_TIME_EXCEEDED:
                    hop_addr = reply.src
                if hop_addr is not None:
                    break
            hops.append(hop_addr)
            if reached:
                return TracerouteResult(
                    vp_name=vp.name, dst=dst, hops=hops, reached=True
                )
            gap = gap + 1 if hop_addr is None else 0
            if gap >= _GAP_LIMIT:
                break
        return TracerouteResult(
            vp_name=vp.name, dst=dst, hops=hops, reached=False
        )

    # -- batches ---------------------------------------------------------

    def batch_ping_rr(
        self,
        vp: VantagePoint,
        dests: Sequence[int],
        pps: Optional[float] = None,
        slots: int = RR_MAX_SLOTS,
        ttl: int = DEFAULT_TTL,
    ) -> List[RRPingResult]:
        """Probe ``dests`` in the given order at a steady ``pps``."""
        return [
            self.ping_rr(vp, dst, slots=slots, ttl=ttl, pps=pps)
            for dst in dests
        ]

    def batch_ping(
        self,
        vp: VantagePoint,
        dests: Iterable[int],
        count: int = 3,
        pps: Optional[float] = None,
    ) -> List[PingResult]:
        return [self.ping(vp, dst, count=count, pps=pps) for dst in dests]
