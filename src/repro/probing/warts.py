"""A compact binary result format — this repository's warts.

scamper archives measurements in *warts*, a framed binary format that
tools stream-process without loading whole files. This module provides
the equivalent for our result types: a magic-tagged header followed by
length-prefixed records, each a type byte plus a compact field
encoding (fixed-width integers, varint-prefixed lists, nullable
addresses). JSONL (:mod:`repro.probing.store`) stays the friendly
format; this one is for bulk archives — typically 3-6x smaller.

Layout::

    file   := magic(4) version(u8) record*
    record := length(u32 BE, excluding itself) type(u8) body
    varint := LEB128, unsigned
    maybe_addr := u8 flag (0=None) + u32 BE when present
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.probing.results import (
    PingResult,
    RRPingResult,
    RRUdpResult,
    TracerouteResult,
    TsPingResult,
)
from repro.probing.store import ResultType

__all__ = ["WartsError", "WartsWriter", "WartsReader", "WartsStore"]

MAGIC = b"RRWa"
VERSION = 1

_TYPE_PING = 1
_TYPE_RR_PING = 2
_TYPE_RR_UDP = 3
_TYPE_TRACEROUTE = 4
_TYPE_TS_PING = 5


class WartsError(ValueError):
    """Raised on malformed archives."""


# -- primitive encoders -------------------------------------------------


def _write_varint(out: io.BytesIO, value: int) -> None:
    if value < 0:
        raise WartsError(f"varints are unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes([byte | 0x80]))
        else:
            out.write(bytes([byte]))
            return


def _read_varint(data: bytes, offset: int) -> "tuple[int, int]":
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WartsError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise WartsError("varint too long")


def _write_u32(out: io.BytesIO, value: int) -> None:
    out.write(value.to_bytes(4, "big"))


def _read_u32(data: bytes, offset: int) -> "tuple[int, int]":
    if offset + 4 > len(data):
        raise WartsError("truncated u32")
    return int.from_bytes(data[offset : offset + 4], "big"), offset + 4


def _write_maybe_u32(out: io.BytesIO, value: Optional[int]) -> None:
    if value is None:
        out.write(b"\x00")
    else:
        out.write(b"\x01")
        _write_u32(out, value)


def _read_maybe_u32(data: bytes, offset: int):
    if offset >= len(data):
        raise WartsError("truncated optional field")
    flag = data[offset]
    offset += 1
    if flag == 0:
        return None, offset
    if flag != 1:
        raise WartsError(f"bad optional flag {flag}")
    return _read_u32(data, offset)


def _write_string(out: io.BytesIO, text: str) -> None:
    raw = text.encode("utf-8")
    _write_varint(out, len(raw))
    out.write(raw)


def _read_string(data: bytes, offset: int):
    length, offset = _read_varint(data, offset)
    if offset + length > len(data):
        raise WartsError("truncated string")
    return data[offset : offset + length].decode("utf-8"), offset + length


def _write_addr_list(out: io.BytesIO, addrs: List[int]) -> None:
    _write_varint(out, len(addrs))
    for addr in addrs:
        _write_u32(out, addr)


def _read_addr_list(data: bytes, offset: int):
    count, offset = _read_varint(data, offset)
    addrs = []
    for _ in range(count):
        addr, offset = _read_u32(data, offset)
        addrs.append(addr)
    return addrs, offset


def _write_maybe_float_ms(out: io.BytesIO, value: Optional[float]) -> None:
    # Times stored as integral microseconds; None flagged out.
    if value is None:
        out.write(b"\x00")
    else:
        out.write(b"\x01")
        _write_varint(out, int(round(value * 1_000_000)))


def _read_maybe_float_ms(data: bytes, offset: int):
    flag = data[offset]
    offset += 1
    if flag == 0:
        return None, offset
    micros, offset = _read_varint(data, offset)
    return micros / 1_000_000, offset


# -- per-type codecs -------------------------------------------------


def _encode_body(result: ResultType) -> "tuple[int, bytes]":
    out = io.BytesIO()
    if isinstance(result, PingResult):
        _write_string(out, result.vp_name)
        _write_u32(out, result.dst)
        _write_varint(out, result.sent)
        _write_varint(out, result.replies)
        _write_maybe_u32(out, result.reply_ident)
        _write_maybe_float_ms(out, result.reply_time)
        return _TYPE_PING, out.getvalue()
    if isinstance(result, RRPingResult):
        _write_string(out, result.vp_name)
        _write_u32(out, result.dst)
        flags = (
            (result.responded << 0)
            | (result.ttl_exceeded << 1)
            | (result.reply_has_rr << 2)
        )
        out.write(bytes([flags]))
        _write_varint(out, result.rr_slots)
        _write_addr_list(out, result.rr_hops)
        _write_maybe_u32(out, result.error_source)
        _write_addr_list(out, result.quoted_rr_hops)
        return _TYPE_RR_PING, out.getvalue()
    if isinstance(result, RRUdpResult):
        _write_string(out, result.vp_name)
        _write_u32(out, result.dst)
        out.write(bytes([int(result.got_unreachable)]))
        _write_addr_list(out, result.quoted_rr_hops)
        _write_maybe_u32(
            out,
            result.quoted_slots,
        )
        _write_maybe_u32(out, result.error_source)
        return _TYPE_RR_UDP, out.getvalue()
    if isinstance(result, TracerouteResult):
        _write_string(out, result.vp_name)
        _write_u32(out, result.dst)
        out.write(bytes([int(result.reached)]))
        _write_varint(out, len(result.hops))
        for hop in result.hops:
            _write_maybe_u32(out, hop)
        return _TYPE_TRACEROUTE, out.getvalue()
    if isinstance(result, TsPingResult):
        _write_string(out, result.vp_name)
        _write_u32(out, result.dst)
        flags = (result.responded << 0) | (result.reply_has_ts << 1)
        out.write(bytes([flags]))
        _write_varint(out, result.flag)
        _write_varint(out, result.overflow)
        _write_varint(out, len(result.entries))
        for addr, ts in result.entries:
            _write_maybe_u32(out, addr)
            _write_maybe_u32(out, ts)
        return _TYPE_TS_PING, out.getvalue()
    raise WartsError(f"unsupported result type {type(result).__name__}")


def _decode_body(kind: int, data: bytes) -> ResultType:
    offset = 0
    if kind == _TYPE_PING:
        vp_name, offset = _read_string(data, offset)
        dst, offset = _read_u32(data, offset)
        sent, offset = _read_varint(data, offset)
        replies, offset = _read_varint(data, offset)
        reply_ident, offset = _read_maybe_u32(data, offset)
        reply_time, offset = _read_maybe_float_ms(data, offset)
        return PingResult(vp_name, dst, sent, replies, reply_ident,
                          reply_time)
    if kind == _TYPE_RR_PING:
        vp_name, offset = _read_string(data, offset)
        dst, offset = _read_u32(data, offset)
        flags = data[offset]
        offset += 1
        rr_slots, offset = _read_varint(data, offset)
        rr_hops, offset = _read_addr_list(data, offset)
        error_source, offset = _read_maybe_u32(data, offset)
        quoted, offset = _read_addr_list(data, offset)
        return RRPingResult(
            vp_name=vp_name,
            dst=dst,
            responded=bool(flags & 1),
            rr_hops=rr_hops,
            rr_slots=rr_slots,
            ttl_exceeded=bool(flags & 2),
            error_source=error_source,
            quoted_rr_hops=quoted,
            reply_has_rr=bool(flags & 4),
        )
    if kind == _TYPE_RR_UDP:
        vp_name, offset = _read_string(data, offset)
        dst, offset = _read_u32(data, offset)
        got = bool(data[offset])
        offset += 1
        quoted, offset = _read_addr_list(data, offset)
        quoted_slots, offset = _read_maybe_u32(data, offset)
        error_source, offset = _read_maybe_u32(data, offset)
        return RRUdpResult(
            vp_name=vp_name,
            dst=dst,
            got_unreachable=got,
            quoted_rr_hops=quoted,
            quoted_slots=quoted_slots,
            error_source=error_source,
        )
    if kind == _TYPE_TRACEROUTE:
        vp_name, offset = _read_string(data, offset)
        dst, offset = _read_u32(data, offset)
        reached = bool(data[offset])
        offset += 1
        count, offset = _read_varint(data, offset)
        hops: List[Optional[int]] = []
        for _ in range(count):
            hop, offset = _read_maybe_u32(data, offset)
            hops.append(hop)
        return TracerouteResult(vp_name, dst, hops, reached)
    if kind == _TYPE_TS_PING:
        vp_name, offset = _read_string(data, offset)
        dst, offset = _read_u32(data, offset)
        flags = data[offset]
        offset += 1
        ts_flag, offset = _read_varint(data, offset)
        overflow, offset = _read_varint(data, offset)
        count, offset = _read_varint(data, offset)
        entries = []
        for _ in range(count):
            addr, offset = _read_maybe_u32(data, offset)
            ts, offset = _read_maybe_u32(data, offset)
            entries.append([addr, ts])
        return TsPingResult(
            vp_name=vp_name,
            dst=dst,
            responded=bool(flags & 1),
            flag=ts_flag,
            entries=entries,
            overflow=overflow,
            reply_has_ts=bool(flags & 2),
        )
    raise WartsError(f"unknown record type {kind}")


# -- framing ---------------------------------------------------------


class WartsWriter:
    """Streams results into a binary archive."""

    def __init__(self, fh: IO[bytes]) -> None:
        self._fh = fh
        self._fh.write(MAGIC)
        self._fh.write(bytes([VERSION]))
        self.records_written = 0

    def write(self, result: ResultType) -> None:
        kind, body = _encode_body(result)
        frame = bytes([kind]) + body
        self._fh.write(len(frame).to_bytes(4, "big"))
        self._fh.write(frame)
        self.records_written += 1

    def write_all(self, results: Iterable[ResultType]) -> int:
        count = 0
        for result in results:
            self.write(result)
            count += 1
        return count


class WartsReader:
    """Streams results back out of a binary archive."""

    def __init__(self, fh: IO[bytes]) -> None:
        self._fh = fh
        header = fh.read(5)
        if len(header) < 5 or header[:4] != MAGIC:
            raise WartsError("not a warts-like archive (bad magic)")
        if header[4] != VERSION:
            raise WartsError(f"unsupported version {header[4]}")

    def __iter__(self) -> Iterator[ResultType]:
        while True:
            length_bytes = self._fh.read(4)
            if not length_bytes:
                return
            if len(length_bytes) < 4:
                raise WartsError("truncated record length")
            length = int.from_bytes(length_bytes, "big")
            frame = self._fh.read(length)
            if len(frame) < length or length < 1:
                raise WartsError("truncated record")
            yield _decode_body(frame[0], frame[1:])


class WartsStore:
    """Path-bound convenience wrapper, mirroring :class:`ResultStore`."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(self, results: Iterable[ResultType]) -> int:
        with self.path.open("wb") as fh:
            return WartsWriter(fh).write_all(results)

    def read(self) -> List[ResultType]:
        if not self.path.exists():
            return []
        with self.path.open("rb") as fh:
            return list(WartsReader(fh))

    def __iter__(self) -> Iterator[ResultType]:
        return iter(self.read())
