"""Probe-order policies.

§4.1 notes that "each VP probed the destination set in random order"
to avoid hammering destination-proximate rate limiters with bursts of
probes to co-located destinations; §4.2 adds TTL limiting for "times
when it is necessary to probe sets of destinations that are similarly
located". These helpers produce the orders the studies (and the
order-sensitivity ablation bench) use.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

from repro.topology.hitlist import Destination
from repro.rng import stable_rng

__all__ = ["ProbeOrder", "order_destinations", "split_round_robin"]


class ProbeOrder(enum.Enum):
    """How a VP walks its destination list."""

    RANDOM = "random"  # the paper's default: spreads load over the edge
    BY_PREFIX = "by_prefix"  # numerically sorted: bursts per origin AS
    AS_GIVEN = "as_given"


def order_destinations(
    dests: Sequence[Destination],
    policy: ProbeOrder,
    seed: int = 0,
    salt: object = "",
) -> List[Destination]:
    """Return ``dests`` reordered under ``policy`` (input untouched).

    ``salt`` lets each VP get its own independent random order from the
    same seed, as in the paper's per-VP randomisation.
    """
    ordered = list(dests)
    if policy is ProbeOrder.AS_GIVEN:
        return ordered
    if policy is ProbeOrder.BY_PREFIX:
        ordered.sort(key=lambda dest: (dest.prefix.base, dest.addr))
        return ordered
    stable_rng(seed, "probe-order", salt).shuffle(ordered)
    return ordered


def split_round_robin(
    dests: Sequence[Destination], ways: int
) -> List[List[Destination]]:
    """Deal destinations across ``ways`` workers, round-robin."""
    if ways <= 0:
        raise ValueError(f"ways must be positive: {ways}")
    buckets: List[List[Destination]] = [[] for _ in range(ways)]
    for index, dest in enumerate(dests):
        buckets[index % ways].append(dest)
    return buckets
