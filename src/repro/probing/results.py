"""Typed probe results and the RR-header decoding they carry.

These are the measurement-side records (what scamper would write to a
warts file): everything in them was parsed from reply packet bytes, and
nothing leaks in from simulator ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.addr import int_to_addr

__all__ = [
    "PingResult",
    "RRPingResult",
    "RRUdpResult",
    "TracerouteResult",
    "TsPingResult",
]


@dataclass(frozen=True)
class PingResult:
    """Outcome of a plain-ping round (no options)."""

    vp_name: str
    dst: int
    sent: int
    replies: int
    reply_ident: Optional[int] = None  # last reply's IP-ID (alias fodder)
    reply_time: Optional[float] = None

    @property
    def responded(self) -> bool:
        return self.replies > 0


@dataclass(frozen=True)
class RRPingResult:
    """Outcome of one ``ping-RR``.

    ``rr_hops`` holds the addresses found in the *reply's* RR option:
    forward-path stamps, then (possibly) the destination's own stamp,
    then reverse-path stamps in whatever slots remained.

    ``quoted_rr_hops`` is filled instead when the probe expired en
    route and a Time Exceeded error quoted the offending header — the
    §4.2 mechanism for recovering RR data from TTL-limited probes.
    """

    vp_name: str
    dst: int
    responded: bool  # an Echo Reply came back
    rr_hops: List[int] = field(default_factory=list)
    rr_slots: int = 9
    ttl_exceeded: bool = False
    error_source: Optional[int] = None
    quoted_rr_hops: List[int] = field(default_factory=list)
    reply_has_rr: bool = False

    @property
    def rr_responsive(self) -> bool:
        """Paper §3.1: replied with the RR option copied into the reply."""
        return self.responded and self.reply_has_rr

    def dest_slot(self, dst_addr: Optional[int] = None) -> Optional[int]:
        """1-based RR slot holding the destination address, if present.

        This is the paper's RR-reachability test ("we test if a
        destination is RR-reachable by observing if the destination IP
        address appears in the RR response header") and its "number of
        RR hops" distance metric. Honest false negatives included: a
        destination that stamped an alias, or did not stamp, yields
        None here, exactly as in §3.3.
        """
        target = self.dst if dst_addr is None else dst_addr
        for index, addr in enumerate(self.rr_hops):
            if addr == target:
                return index + 1
        return None

    @property
    def reachable(self) -> bool:
        return self.dest_slot() is not None

    def forward_hops(self) -> List[int]:
        """RR stamps before the destination's own (empty if unreachable)."""
        slot = self.dest_slot()
        return [] if slot is None else self.rr_hops[: slot - 1]

    def reverse_hops(self) -> List[int]:
        """RR stamps after the destination's own: the reverse path [11]."""
        slot = self.dest_slot()
        return [] if slot is None else self.rr_hops[slot:]

    def __str__(self) -> str:
        hops = ", ".join(int_to_addr(a) for a in self.rr_hops)
        return (
            f"RRPing({self.vp_name} -> {int_to_addr(self.dst)} "
            f"responded={self.responded} rr=[{hops}])"
        )


@dataclass(frozen=True)
class RRUdpResult:
    """Outcome of one ``ping-RRudp`` (UDP high port, RR enabled).

    A port-unreachable error quotes the offending packet, so
    ``quoted_rr_hops``/``quoted_slots`` reveal whether the probe
    reached the destination with slots to spare — the §3.3 test for
    destinations that do not honor RR.
    """

    vp_name: str
    dst: int
    got_unreachable: bool
    quoted_rr_hops: List[int] = field(default_factory=list)
    quoted_slots: Optional[int] = None
    error_source: Optional[int] = None

    @property
    def slots_remaining(self) -> Optional[int]:
        if not self.got_unreachable or self.quoted_slots is None:
            return None
        return self.quoted_slots - len(self.quoted_rr_hops)

    @property
    def arrived_with_room(self) -> bool:
        """True if the probe hit the destination with ≥1 free RR slot."""
        remaining = self.slots_remaining
        return (
            remaining is not None
            and remaining >= 1
            and self.error_source == self.dst
        )


@dataclass(frozen=True)
class TsPingResult:
    """Outcome of one ``ping-TS`` (ICMP echo with a Timestamp option).

    ``entries`` mirrors the reply option: ``(address-or-None,
    timestamp-ms-or-None)`` pairs, in slot order. For a prespecified
    probe, a slot with a non-None timestamp confirms that the named
    device processed the packet — the on-path test reverse traceroute
    uses [11].
    """

    vp_name: str
    dst: int
    responded: bool
    flag: int = 0
    entries: List[List[Optional[int]]] = field(default_factory=list)
    overflow: int = 0
    reply_has_ts: bool = False

    @property
    def stamped_count(self) -> int:
        return sum(1 for _addr, ts in self.entries if ts is not None)

    def stamped_addr(self, addr: int) -> bool:
        """True if ``addr`` appears with a filled timestamp."""
        return any(
            slot_addr == addr and ts is not None
            for slot_addr, ts in self.entries
        )

    def timestamps(self) -> List[int]:
        return [ts for _addr, ts in self.entries if ts is not None]


@dataclass(frozen=True)
class TracerouteResult:
    """Outcome of an ICMP traceroute (one probe per TTL)."""

    vp_name: str
    dst: int
    hops: List[Optional[int]] = field(default_factory=list)
    reached: bool = False

    @property
    def hop_count(self) -> Optional[int]:
        """Hops to the destination (inclusive), when it was reached."""
        return len(self.hops) if self.reached else None

    def responsive_hops(self) -> List[int]:
        return [addr for addr in self.hops if addr is not None]

    def __str__(self) -> str:
        rendered = " ".join(
            "*" if addr is None else int_to_addr(addr) for addr in self.hops
        )
        return (
            f"Traceroute({self.vp_name} -> {int_to_addr(self.dst)} "
            f"reached={self.reached}: {rendered})"
        )
