"""Vantage points: where probes are launched from.

The paper's VPs are "one randomly chosen machine at each operational
PlanetLab (55) and M-Lab (86) site" plus a machine at USC for plain
pings. Placement is what drives Figure 1's M-Lab-vs-PlanetLab gap:
M-Lab sites sit in "centrally-located transit networks and colocation
facilities, while most PlanetLab VPs are hosted in university
networks". Scenario builders therefore attach M-Lab VPs to colo
tier-2 ASes, PlanetLab VPs to university stubs, and cloud VPs to the
designated cloud ASes.

A VP can be *locally filtered*: its site firewall or kernel drops
options packets before they ever reach the network — the paper's
observation (after [8]) that "a host that can send RR packets without
being filtered locally can likely reach most destinations that support
the Option" implies many hosts cannot. Locally-filtered VPs answer
nothing for ping-RR, like the 56 VPs Figure 4 had to exclude.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

__all__ = ["Platform", "VantagePoint", "vp_addr", "SITE_CITIES"]

#: /24 index inside an AS block reserved for measurement hosts.
_VP_SUBNET_INDEX = 230

#: City codes used to name sites, in deployment order. The first few
#: match cities the paper calls out (NYC, LA, Denver, Miami, Milan) so
#: greedy-selection output reads like §3.3's.
SITE_CITIES: List[str] = [
    "nyc", "lax", "den", "mia", "mil", "lhr", "iad", "sea", "ord", "atl",
    "ams", "fra", "cdg", "syd", "nrt", "gru", "yyz", "dfw", "svo", "bom",
    "hkg", "sin", "jnb", "mex", "scl", "arn", "waw", "prg", "vie", "zrh",
    "dub", "bru", "mad", "lis", "ath", "hel", "osl", "cph", "bud", "otp",
    "kix", "icn", "tpe", "kul", "bkk", "del", "dxb", "doh", "cai", "lad",
    "los", "nbo", "cpt", "bog", "lim", "eze", "mvd", "pty", "sjc", "phx",
    "slc", "msp", "det", "bos", "phl", "clt", "mco", "bna", "stl", "mci",
    "pdx", "san", "aus", "iah", "pit", "cle", "cmh", "ind", "mke", "okc",
    "abq", "tus", "elp", "sat", "mem", "jax", "rdu", "ric", "orf", "sdf",
    "buf", "roc", "alb", "btv", "pwm", "mht", "pvd", "hfd", "isp", "acy",
]


class Platform(enum.Enum):
    """Measurement platform a VP belongs to."""

    MLAB = "mlab"
    PLANETLAB = "planetlab"
    CLOUD = "cloud"
    ATLAS = "atlas"  # RIPE-Atlas-style probes (§3.3's what-if)
    LOCAL = "local"  # the USC-style origin used for plain pings


def vp_addr(asn: int, index: int) -> int:
    """The address of measurement host ``index`` inside AS ``asn``.

    Measurement hosts live in the AS block's /24 index 230, below the
    infrastructure region and above advertised space.
    """
    if not 0 <= index <= 253:
        raise ValueError(f"VP index out of range: {index}")
    return (asn << 16) | (_VP_SUBNET_INDEX << 8) | (index + 1)


@dataclass(frozen=True)
class VantagePoint:
    """One measurement host."""

    name: str  # e.g. "mlab-nyc-0"
    site: str  # e.g. "nyc"; site identity is what persists across years
    platform: Platform
    asn: int
    addr: int
    local_filtered: bool = False

    def __str__(self) -> str:
        flag = " [filtered]" if self.local_filtered else ""
        return f"{self.name} (AS{self.asn}){flag}"
