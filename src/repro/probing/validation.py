"""Structural validation and quarantine of RR probe replies.

The paper's §3.5/§4 caveat is that Record Route data arrives from
routers and hosts that may ignore, mangle, or fake the option — and
operational platforms (RIPE Atlas's "zombie probes") show misbehaving
vantage points are a first-class failure mode at scale. This module is
the trust boundary between the dataplane and the survey: every reply
is checked against structural invariants *before* it may contribute a
row, and everything that fails is quarantined with a machine-readable
reason code instead of silently poisoning the artifact.

Invariants (checked in order; the first failure wins):

1. **Wire sanity** — a reply carrying raw option bytes must re-decode
   through :meth:`RecordRouteOption.from_bytes`; any
   :class:`OptionDecodeError` is ``option_malformed``.
2. **Duplicate detection** — a ``(rr, dest_slot)`` pair with a
   non-None slot seen for two *distinct* destinations is impossible in
   an honest world (slot ``dest_slot`` must hold each destination's
   own address), so every occurrence is ``duplicate_reply``. The
   non-None-slot requirement keeps the rule sound: two same-/24
   destinations more than nine hops out legitimately share an
   identical full header with no destination stamp.
3. **Source plausibility** — a reply whose source is not the probed
   destination is ``spoofed_source``.
4. **Slot accounting** — more recorded stamps than allocated slots is
   ``too_many_stamps``.
5. **Stamp consistency** — a claimed ``dest_slot`` must index into the
   header and hold the destination's own address, else
   ``stamp_mismatch``.
6. **Option echo** — a response without the RR option echoed is merely
   *suspect* (``rr_absent``): RFC-ignoring hosts do this in the clean
   world (the paper's non-participation case), so it is never
   quarantined — it simply contributes no row, exactly as before.

Verdicts are ``valid`` / ``suspect`` / ``invalid``. Only **invalid**
replies are quarantined, retried, and — when they stay invalid past
the retry budget — degraded to plain ping (the paper's framing: RR is
*an* option, not the only one). The clean path therefore produces
zero invalid verdicts and byte-identical survey artifacts with
validation on or off.

Determinism: validation is a pure function of the collected replies —
it runs once over a VP's *complete* probe sequence (never per
dispatch chunk, so span-tracing's batch size cannot leak into
verdicts), and its outputs are sorted before they land in artifacts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.net.options import OptionDecodeError, RecordRouteOption
from repro.obs.metrics import CounterFamily, MetricsRegistry

__all__ = [
    "INVALID",
    "SUSPECT",
    "VALID",
    "QUARANTINE_REASONS",
    "REASON_DUPLICATE",
    "REASON_OPTION_MALFORMED",
    "REASON_RR_ABSENT",
    "REASON_SPOOFED",
    "REASON_STAMP_MISMATCH",
    "REASON_TOO_MANY_STAMPS",
    "ReplyValidator",
    "empty_quality",
    "merge_quality",
    "quarantine_counter",
    "rr_degradation_counter",
    "validation_verdict_counter",
]

VALID = "valid"
SUSPECT = "suspect"
INVALID = "invalid"

REASON_OPTION_MALFORMED = "option_malformed"
REASON_DUPLICATE = "duplicate_reply"
REASON_SPOOFED = "spoofed_source"
REASON_TOO_MANY_STAMPS = "too_many_stamps"
REASON_STAMP_MISMATCH = "stamp_mismatch"
REASON_RR_ABSENT = "rr_absent"

#: Reasons that quarantine a reply (``rr_absent`` is suspect-only).
QUARANTINE_REASONS: Tuple[str, ...] = (
    REASON_OPTION_MALFORMED,
    REASON_DUPLICATE,
    REASON_SPOOFED,
    REASON_TOO_MANY_STAMPS,
    REASON_STAMP_MISMATCH,
)


def validation_verdict_counter(registry: MetricsRegistry) -> CounterFamily:
    """``validation_verdicts_total{net, verdict}`` — replies by verdict."""
    return registry.counter(
        "validation_verdicts_total",
        "RR replies checked by the validation pipeline, by verdict "
        "(valid, suspect, invalid).",
        ("net", "verdict"),
    )


def quarantine_counter(registry: MetricsRegistry) -> CounterFamily:
    """``quarantine_records_total{net, reason}`` — quarantined replies."""
    return registry.counter(
        "quarantine_records_total",
        "Replies quarantined by the validation pipeline, by reason code.",
        ("net", "reason"),
    )


def rr_degradation_counter(registry: MetricsRegistry) -> CounterFamily:
    """``rr_degraded_total{net, reason}`` — RR→ping degradations."""
    return registry.counter(
        "rr_degraded_total",
        "Destinations degraded from RR to plain ping after persistently "
        "invalid replies, by final reason code.",
        ("net", "reason"),
    )


def empty_quality() -> dict:
    """The zero-valued per-VP quality summary (stable schema)."""
    return {
        "checked": 0,
        "verdicts": {VALID: 0, SUSPECT: 0, INVALID: 0},
        "reasons": {},
        "invalid_dests": 0,
        "quarantined": [],
        "degraded": [],
    }


def merge_quality(total: dict, part: Optional[dict]) -> dict:
    """Accumulate one VP's quality summary into a campaign-level total.

    ``quarantined``/``degraded`` record lists concatenate (callers
    append per-VP in VP order, so the merged order is deterministic);
    scalar counters add.
    """
    if not part:
        return total
    total["checked"] += part.get("checked", 0)
    for verdict, count in part.get("verdicts", {}).items():
        total["verdicts"][verdict] = (
            total["verdicts"].get(verdict, 0) + count
        )
    for reason, count in part.get("reasons", {}).items():
        total["reasons"][reason] = total["reasons"].get(reason, 0) + count
    total["invalid_dests"] += part.get("invalid_dests", 0)
    total["quarantined"].extend(part.get("quarantined", ()))
    total["degraded"].extend(part.get("degraded", ()))
    return total


class ReplyValidator:
    """One vantage point's reply-validation pipeline.

    Stateful across retry rounds: the duplicate detector accumulates
    every ``(rr, dest_slot)`` signature it has seen for this VP, so a
    zombie's canned reply stays flagged even when a retry re-probes a
    single destination. All counters land in the supplied registry
    (worker registries merge home through the usual snapshot path).
    """

    def __init__(
        self,
        vp_name: str,
        slots: int,
        position: Dict[int, int],
        registry: MetricsRegistry,
        net_id: str,
    ) -> None:
        self.vp_name = vp_name
        self.slots = int(slots)
        self.position = position
        verdicts = validation_verdict_counter(registry)
        self._verdict_counters = {
            verdict: verdicts.labels(net_id, verdict)
            for verdict in (VALID, SUSPECT, INVALID)
        }
        self._quarantine_family = quarantine_counter(registry)
        self._net_id = net_id
        #: (rr tuple, dest_slot) -> distinct dest addrs that claimed it.
        self._dup_seen: Dict[Tuple, Set[int]] = {}
        self.checked = 0
        self.verdict_counts = {VALID: 0, SUSPECT: 0, INVALID: 0}
        self.reason_counts: Dict[str, int] = {}
        self.quarantined: List[dict] = []
        self._invalid_dests: Set[int] = set()

    # -- checking ----------------------------------------------------------

    def check_batch(
        self, pairs: Sequence[Tuple], round_no: int = 0
    ) -> List[Tuple[Optional[str], Optional[str]]]:
        """Validate ``(dest, outcome)`` pairs; returns aligned verdicts.

        Each result is ``(verdict, reason)``; ``(None, None)`` marks an
        unanswered probe (nothing to validate). Must be called with a
        *complete* round — the duplicate pre-scan needs to see every
        reply of the round before judging any of them.
        """
        # Pre-scan: register this round's signatures so the *first*
        # occurrence of a duplicated reply is flagged too.
        dup_seen = self._dup_seen
        for dest, outcome in pairs:
            if outcome.rr_responsive and outcome.dest_slot is not None:
                key = (outcome.rr, outcome.dest_slot)
                dup_seen.setdefault(key, set()).add(dest.addr)
        results: List[Tuple[Optional[str], Optional[str]]] = []
        for dest, outcome in pairs:
            verdict, reason = self._check_one(dest, outcome)
            if verdict is not None:
                self.checked += 1
                self.verdict_counts[verdict] += 1
                self._verdict_counters[verdict].inc()
                if reason is not None:
                    self.reason_counts[reason] = (
                        self.reason_counts.get(reason, 0) + 1
                    )
                if verdict == INVALID:
                    self._invalid_dests.add(dest.addr)
                    self.quarantined.append(
                        self._record(dest, outcome, reason, round_no)
                    )
                    self._quarantine_family.labels(
                        self._net_id, reason
                    ).inc()
            results.append((verdict, reason))
        return results

    def _check_one(
        self, dest, outcome
    ) -> Tuple[Optional[str], Optional[str]]:
        if not outcome.responded:
            return None, None
        if outcome.wire is not None:
            try:
                RecordRouteOption.from_bytes(outcome.wire)
            except OptionDecodeError:
                return INVALID, REASON_OPTION_MALFORMED
        if outcome.rr_responsive and outcome.dest_slot is not None:
            key = (outcome.rr, outcome.dest_slot)
            if len(self._dup_seen.get(key, ())) >= 2:
                return INVALID, REASON_DUPLICATE
        if outcome.reply_src is not None and outcome.reply_src != dest.addr:
            return INVALID, REASON_SPOOFED
        if outcome.reply_has_rr:
            if len(outcome.rr) > self.slots:
                return INVALID, REASON_TOO_MANY_STAMPS
            if outcome.dest_slot is not None:
                # dest_slot is the 1-based RR slot claimed to hold the
                # destination's own address (the survey's row value).
                if (
                    outcome.dest_slot < 1
                    or outcome.dest_slot > len(outcome.rr)
                    or outcome.rr[outcome.dest_slot - 1] != dest.addr
                ):
                    return INVALID, REASON_STAMP_MISMATCH
            return VALID, None
        return SUSPECT, REASON_RR_ABSENT

    def _record(self, dest, outcome, reason: str, round_no: int) -> dict:
        """One quarantine sidecar record (JSON-roundtrippable)."""
        return {
            "vp": self.vp_name,
            "dest": dest.addr,
            "dest_index": self.position[dest.addr],
            "round": round_no,
            "reason": reason,
            "rr": list(outcome.rr),
            "dest_slot": outcome.dest_slot,
            "reply_src": outcome.reply_src,
            "wire": None if outcome.wire is None else outcome.wire.hex(),
        }

    # -- summary -----------------------------------------------------------

    def summary(self) -> dict:
        """This VP's quality block for rows/checkpoints/manifests.

        Quarantine records sort by ``(dest_index, round)`` so the
        sidecar bytes never depend on probe order or retry schedule.
        """
        return {
            "checked": self.checked,
            "verdicts": dict(self.verdict_counts),
            "reasons": {
                reason: self.reason_counts[reason]
                for reason in sorted(self.reason_counts)
            },
            "invalid_dests": len(self._invalid_dests),
            "quarantined": sorted(
                self.quarantined,
                key=lambda r: (r["dest_index"], r["round"]),
            ),
            "degraded": [],
        }
