"""A JSONL result store — this repository's warts files.

Measurement studies write streams of typed results to disk and analyses
read them back without needing the simulator. The format is one JSON
object per line with a ``type`` tag, so files are greppable, diffable,
and appendable.
"""

from __future__ import annotations

import dataclasses
import io
import json
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Type, Union

from repro.probing.artifacts import atomic_write_text
from repro.probing.results import (
    PingResult,
    RRPingResult,
    RRUdpResult,
    TracerouteResult,
    TsPingResult,
)

__all__ = ["ResultStore", "dump_results", "load_results"]

ResultType = Union[
    PingResult, RRPingResult, RRUdpResult, TracerouteResult, TsPingResult
]

_REGISTRY: dict = {
    "ping": PingResult,
    "rr_ping": RRPingResult,
    "rr_udp": RRUdpResult,
    "traceroute": TracerouteResult,
    "ts_ping": TsPingResult,
}
_TYPE_TAGS = {cls: tag for tag, cls in _REGISTRY.items()}


def _encode(result: ResultType) -> str:
    tag = _TYPE_TAGS.get(type(result))
    if tag is None:
        raise TypeError(f"unsupported result type: {type(result).__name__}")
    record = dataclasses.asdict(result)
    record["type"] = tag
    return json.dumps(record, separators=(",", ":"), sort_keys=True)


def _decode(line: str) -> ResultType:
    record = json.loads(line)
    tag = record.pop("type", None)
    cls: Type = _REGISTRY.get(tag)
    if cls is None:
        raise ValueError(f"unknown result type tag: {tag!r}")
    field_names = {field.name for field in dataclasses.fields(cls)}
    unknown = set(record) - field_names
    if unknown:
        raise ValueError(f"unknown fields for {tag}: {sorted(unknown)}")
    return cls(**record)


def dump_results(results: Iterable[ResultType], fh: IO[str]) -> int:
    """Write results as JSONL; returns the number written."""
    count = 0
    for result in results:
        fh.write(_encode(result))
        fh.write("\n")
        count += 1
    return count


def load_results(fh: IO[str]) -> Iterator[ResultType]:
    """Stream results back from JSONL (blank lines skipped)."""
    for line in fh:
        line = line.strip()
        if line:
            yield _decode(line)


class ResultStore:
    """Convenience wrapper binding the codec to a file path."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(self, results: Iterable[ResultType]) -> int:
        """Replace the store's contents atomically.

        The encoded stream is staged in memory and lands through the
        shared write-rename helper, so a crash mid-write leaves the
        previous complete store rather than a torn JSONL file.
        """
        buffer = io.StringIO()
        count = dump_results(results, buffer)
        atomic_write_text(self.path, buffer.getvalue())
        return count

    def append(self, results: Iterable[ResultType]) -> int:
        with self.path.open("a", encoding="utf-8") as fh:
            return dump_results(results, fh)

    def read(self) -> List[ResultType]:
        if not self.path.exists():
            return []
        with self.path.open("r", encoding="utf-8") as fh:
            return list(load_results(fh))

    def __iter__(self) -> Iterator[ResultType]:
        return iter(self.read())
