"""Deterministic, structure-keyed randomness.

Every stochastic decision in the simulator (does this host answer pings?
does this router stamp RR? how many internal hops does this AS have?) is
derived from a scenario seed plus the identity of the entity deciding.
That makes whole scenarios reproducible bit-for-bit from a single integer
seed, independent of iteration order, process hash randomisation, and
call ordering — a property the tests and benchmarks rely on heavily.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, Tuple, TypeVar

__all__ = [
    "stable_u64",
    "stable_uniform",
    "stable_choice",
    "stable_randint",
    "stable_rng",
    "derive_seed",
]

T = TypeVar("T")


def _digest(parts: Tuple[object, ...]) -> bytes:
    """Hash a tuple of primitive parts into 8 stable bytes."""
    hasher = hashlib.blake2b(digest_size=8)
    for part in parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return hasher.digest()


def stable_u64(*parts: object) -> int:
    """A uniform 64-bit integer keyed by ``parts``."""
    return int.from_bytes(_digest(parts), "big")


def stable_uniform(*parts: object) -> float:
    """A uniform float in [0, 1) keyed by ``parts``."""
    return stable_u64(*parts) / (1 << 64)


def stable_randint(low: int, high: int, *parts: object) -> int:
    """A uniform integer in [low, high] inclusive, keyed by ``parts``."""
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    return low + stable_u64(*parts) % (high - low + 1)


def stable_choice(options: Sequence[T], *parts: object) -> T:
    """Pick one of ``options`` uniformly, keyed by ``parts``."""
    if not options:
        raise ValueError("cannot choose from an empty sequence")
    return options[stable_u64(*parts) % len(options)]


def stable_rng(*parts: object) -> random.Random:
    """A :class:`random.Random` seeded stably by ``parts``.

    Use when a decision needs many draws (e.g. shuffling a probe order);
    for one-shot decisions prefer :func:`stable_uniform` and friends.
    """
    return random.Random(stable_u64(*parts))


def derive_seed(seed: int, label: str) -> int:
    """Derive an independent child seed from ``seed`` for ``label``."""
    return stable_u64(seed, "derive", label)


def weighted_choice(
    rng: random.Random, weighted: Iterable[Tuple[T, float]]
) -> T:
    """Pick an item from ``(item, weight)`` pairs using ``rng``."""
    pairs = list(weighted)
    total = sum(weight for _item, weight in pairs)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    target = rng.random() * total
    accumulated = 0.0
    for item, weight in pairs:
        accumulated += weight
        if target < accumulated:
            return item
    return pairs[-1][0]
