"""Longitudinal prudence study (the paper's conclusion, simulated).

The conclusion warns: "Should there be a wide-scale increase in RR
traffic, it is possible that some operators might configure routers
within their networks to filter or refuse to stamp packets with RR
enabled ... For this reason, we suggest exercising prudence" — while
noting that nine years of reverse traceroute's moderate daily RR
traffic caused no visible decline.

This module simulates that dynamic over probing epochs:

* every AS accrues slow-path load (options packets its routers
  process, the §4.2/[10] cost) during each epoch's probing round;
* an operator whose network's per-epoch load exceeds an annoyance
  threshold flips on options filtering with some probability, and the
  filter is sticky (operators rarely revisit hardening changes);
* two probing strategies run in separate worlds from the same seed:
  **exhaustive** (every working VP probes every destination at full
  TTL every epoch) and **prudent** (a greedy subset of sites, §4.2
  TTL limiting, and per-VP response-calibrated pacing).

The output is the RR-responsiveness trajectory per strategy — the
quantified version of the conclusion's advice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.reachability import greedy_site_selection
from repro.core.survey import RRSurvey, run_rr_survey
from repro.probing.vantage import Platform, VantagePoint
from repro.rng import stable_uniform
from repro.scenarios.internet import Scenario

__all__ = [
    "EpochStats",
    "LongitudinalStudy",
    "ProbingStrategy",
    "exhaustive_strategy",
    "prudent_strategy",
    "run_longitudinal_study",
]


@dataclass(frozen=True)
class ProbingStrategy:
    """One probing discipline, applied every epoch."""

    name: str
    #: Choose the VPs used each epoch from the scenario's platform VPs.
    pick_vps: Callable[[Scenario, RRSurvey], List[VantagePoint]]
    ttl: int = 64
    pps: float = 20.0


def exhaustive_strategy() -> ProbingStrategy:
    """Every working VP, default TTL, every destination, every epoch."""
    return ProbingStrategy(
        name="exhaustive",
        pick_vps=lambda scenario, _survey: scenario.working_vps,
        ttl=64,
    )


def prudent_strategy(sites: int = 5, ttl: int = 12) -> ProbingStrategy:
    """Greedy site subset + TTL limiting (§3.3 + §4.2 combined)."""

    def pick(scenario: Scenario, survey: RRSurvey) -> List[VantagePoint]:
        picks = greedy_site_selection(
            survey, Platform.MLAB, max_picks=sites
        )
        chosen_sites = {site for site, _coverage in picks}
        chosen = [
            vp
            for vp in scenario.working_vps
            if vp.site in chosen_sites and vp.platform is Platform.MLAB
        ]
        return chosen or scenario.working_vps[:sites]

    return ProbingStrategy(name="prudent", pick_vps=pick, ttl=ttl)


@dataclass
class EpochStats:
    """One epoch's outcome for one strategy."""

    epoch: int
    rr_responsive: int
    reachable: int
    probes_sent: int
    slow_path_load: int  # total options packets processed by routers
    newly_filtering_asns: List[int] = field(default_factory=list)


@dataclass
class LongitudinalStudy:
    """Per-strategy trajectories across epochs."""

    epochs: int = 0
    trajectories: Dict[str, List[EpochStats]] = field(default_factory=dict)

    def final_responsive(self, strategy: str) -> int:
        return self.trajectories[strategy][-1].rr_responsive

    def responsiveness_decline(self, strategy: str) -> float:
        """Relative loss of RR-responsive destinations, first→last."""
        series = self.trajectories[strategy]
        first = series[0].rr_responsive
        if first == 0:
            return 0.0
        return 1.0 - series[-1].rr_responsive / first

    def total_new_filters(self, strategy: str) -> int:
        return sum(
            len(stats.newly_filtering_asns)
            for stats in self.trajectories[strategy]
        )

    def render(self) -> str:
        lines = [
            f"Longitudinal prudence study over {self.epochs} epochs:",
            f"{'strategy':>12} {'epoch':>6} {'responsive':>11} "
            f"{'reachable':>10} {'load':>10} {'new filters':>12}",
        ]
        for name, series in sorted(self.trajectories.items()):
            for stats in series:
                lines.append(
                    f"{name:>12} {stats.epoch:>6} "
                    f"{stats.rr_responsive:>11} {stats.reachable:>10} "
                    f"{stats.slow_path_load:>10} "
                    f"{len(stats.newly_filtering_asns):>12}"
                )
        for name in sorted(self.trajectories):
            lines.append(
                f"{name}: responsiveness declined "
                f"{self.responsiveness_decline(name):.1%}; "
                f"{self.total_new_filters(name)} ASes started filtering"
            )
        return "\n".join(lines)


def _apply_operator_reactions(
    scenario: Scenario,
    epoch: int,
    annoyance_threshold: int,
    reaction_prob: float,
) -> List[int]:
    """Flip filters on over-loaded ASes; returns the newly-filtering."""
    network = scenario.network
    flipped = []
    for asn, load in sorted(network.options_load.items()):
        autsys = scenario.graph[asn]
        if autsys.filters_options or load < annoyance_threshold:
            continue
        draw = stable_uniform(
            scenario.seed, "operator-reaction", asn, epoch
        )
        if draw < reaction_prob:
            network.set_as_options_filter(asn, True)
            flipped.append(asn)
    return flipped


def run_longitudinal_study(
    scenario_factory: Callable[[], Scenario],
    strategies: Optional[Sequence[ProbingStrategy]] = None,
    epochs: int = 5,
    annoyance_threshold: int = 4000,
    reaction_prob: float = 0.5,
) -> LongitudinalStudy:
    """Run each strategy in its own world for ``epochs`` rounds.

    ``scenario_factory`` must build identical worlds (same seed) so
    the strategies face the same Internet; each gets a private copy
    because operator reactions mutate filtering state.
    """
    if strategies is None:
        strategies = [exhaustive_strategy(), prudent_strategy()]
    study = LongitudinalStudy(epochs=epochs)

    for strategy in strategies:
        scenario = scenario_factory()
        network = scenario.network
        series: List[EpochStats] = []
        survey = run_rr_survey(scenario)  # epoch-0 calibration census
        for epoch in range(epochs):
            network.reset_options_load()
            network.stats.reset()
            vps = strategy.pick_vps(scenario, survey)
            survey = run_rr_survey(
                scenario,
                vps=vps,
                pps=strategy.pps,
                slots=9,
            ) if strategy.ttl == 64 else _limited_survey(
                scenario, vps, strategy
            )
            flipped = _apply_operator_reactions(
                scenario, epoch, annoyance_threshold, reaction_prob
            )
            series.append(
                EpochStats(
                    epoch=epoch,
                    rr_responsive=len(survey.rr_responsive_indices()),
                    reachable=len(survey.reachable_indices()),
                    probes_sent=network.stats.sent,
                    slow_path_load=sum(network.options_load.values()),
                    newly_filtering_asns=flipped,
                )
            )
        study.trajectories[strategy.name] = series
    return study


def _limited_survey(
    scenario: Scenario,
    vps: Sequence[VantagePoint],
    strategy: ProbingStrategy,
) -> RRSurvey:
    """A TTL-limited probing round (quoted-RR recoveries still count
    toward load reduction, but only echo replies define
    responsiveness, as in Figure 5)."""
    from repro.probing.scheduler import ProbeOrder, order_destinations

    targets = list(scenario.hitlist)
    survey = RRSurvey(
        vps=list(vps),
        dests=targets,
        responses=[{} for _ in targets],
        inprefix_addrs=[set() for _ in targets],
    )
    position = {dest.addr: index for index, dest in enumerate(targets)}
    for vp_index, vp in enumerate(vps):
        ordered = order_destinations(
            targets, ProbeOrder.RANDOM, seed=scenario.seed, salt=vp.name
        )
        for dest in ordered:
            result = scenario.prober.ping_rr(
                vp, dest.addr, ttl=strategy.ttl, pps=strategy.pps
            )
            if result.rr_responsive:
                survey.responses[position[dest.addr]][vp_index] = (
                    result.dest_slot()
                )
    return survey
