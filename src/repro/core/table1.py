"""Table 1: response rates for pings with/without RR, by IP and by AS.

Reproduces §3.2: counts of probed / ping-responsive / RR-responsive
destinations, total and per CAIDA AS type, both per IP address and per
AS (an AS counts as responsive if at least one of its addresses is).
Also computes the headline ratios the text quotes (75% of
ping-responsive IPs answer RR; 82% of ping-responsive ASes do) and the
per-destination VP-response-count distribution ("roughly 80% of
destinations that responded to at least one VP responded to over 90").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cdf import Cdf
from repro.analysis.stats import fraction, percent
from repro.core.survey import PingSurvey, RRSurvey
from repro.topology.classification import ASClassification, TYPE_LABELS
from repro.topology.autsys import ASType

__all__ = ["Table1Row", "Table1", "build_table1", "vp_response_fractions"]

_COLUMN_ORDER = [
    None,  # Total
    ASType.TRANSIT_ACCESS,
    ASType.ENTERPRISE,
    ASType.CONTENT,
    ASType.UNKNOWN,
]


@dataclass
class Table1Row:
    """One row: counts per column (Total + the four AS types)."""

    label: str
    counts: Dict[Optional[ASType], int] = field(default_factory=dict)

    def of(self, as_type: Optional[ASType]) -> int:
        return self.counts.get(as_type, 0)


@dataclass
class Table1:
    """The full table plus its derived headline numbers."""

    by_ip: List[Table1Row]
    by_as: List[Table1Row]

    def _row(self, rows: List[Table1Row], label: str) -> Table1Row:
        for row in rows:
            if row.label == label:
                return row
        raise KeyError(label)

    # -- headline ratios ----------------------------------------------------

    @property
    def ip_rr_over_ping(self) -> float:
        """Fraction of ping-responsive IPs that are RR-responsive (~0.75)."""
        ping = self._row(self.by_ip, "Ping Responsive").of(None)
        rr = self._row(self.by_ip, "RR-Responsive").of(None)
        return fraction(rr, ping)

    @property
    def as_rr_over_ping(self) -> float:
        """Fraction of ping-responsive ASes that are RR-responsive (~0.82)."""
        ping = self._row(self.by_as, "Ping Responsive").of(None)
        rr = self._row(self.by_as, "RR-Responsive").of(None)
        return fraction(rr, ping)

    def type_ratio(self, as_type: ASType) -> float:
        """RR-responsive / ping-responsive for one AS type (all > 0.67)."""
        ping = self._row(self.by_ip, "Ping Responsive").of(as_type)
        rr = self._row(self.by_ip, "RR-Responsive").of(as_type)
        return fraction(rr, ping)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        headers = ["", "Total"] + [
            TYPE_LABELS[as_type] for as_type in _COLUMN_ORDER[1:]
        ]
        lines = [" | ".join(f"{h:>16}" for h in headers)]

        def emit(section: str, rows: List[Table1Row]) -> None:
            probed = rows[0]
            for row in rows:
                cells = [f"{section + ' ' + row.label:>16}"]
                for as_type in _COLUMN_ORDER:
                    count = row.of(as_type)
                    cells.append(
                        f"{count:>8} ({percent(count, probed.of(as_type))})"
                    )
                lines.append(" | ".join(cells))

        emit("IP", self.by_ip)
        emit("AS", self.by_as)
        lines.append(
            f"RR/ping by IP: {self.ip_rr_over_ping:.2f}   "
            f"RR/ping by AS: {self.as_rr_over_ping:.2f}"
        )
        return "\n".join(lines)


def _count_rows(
    label_sets: Dict[str, Dict[Optional[ASType], int]]
) -> List[Table1Row]:
    return [
        Table1Row(label=label, counts=counts)
        for label, counts in label_sets.items()
    ]


def build_table1(
    classification: ASClassification,
    ping_survey: PingSurvey,
    rr_survey: RRSurvey,
) -> Table1:
    """Assemble Table 1 from the two §3.1 studies."""

    def empty() -> Dict[Optional[ASType], int]:
        return {column: 0 for column in _COLUMN_ORDER}

    ip_counts = {
        "All Probed": empty(),
        "Ping Responsive": empty(),
        "RR-Responsive": empty(),
    }
    # Per-AS status: [probed?, ping-responsive?, rr-responsive?]
    as_status: Dict[int, List[bool]] = {}

    for index, dest in enumerate(rr_survey.dests):
        as_type = classification.type_of(dest.asn)
        ping_ok = ping_survey.is_responsive(dest.addr)
        rr_ok = rr_survey.rr_responsive(index)
        for column in (None, as_type):
            ip_counts["All Probed"][column] += 1
            if ping_ok:
                ip_counts["Ping Responsive"][column] += 1
            if rr_ok:
                ip_counts["RR-Responsive"][column] += 1
        status = as_status.setdefault(dest.asn, [False, False, False])
        status[0] = True
        status[1] = status[1] or ping_ok
        status[2] = status[2] or rr_ok

    as_counts = {
        "All Probed": empty(),
        "Ping Responsive": empty(),
        "RR-Responsive": empty(),
    }
    for asn, (probed, ping_ok, rr_ok) in as_status.items():
        as_type = classification.type_of(asn)
        for column in (None, as_type):
            if probed:
                as_counts["All Probed"][column] += 1
            if ping_ok:
                as_counts["Ping Responsive"][column] += 1
            if rr_ok:
                as_counts["RR-Responsive"][column] += 1

    return Table1(by_ip=_count_rows(ip_counts), by_as=_count_rows(as_counts))


def vp_response_fractions(rr_survey: RRSurvey) -> Cdf:
    """Per RR-responsive destination: fraction of VPs that heard it.

    The paper reports the count distribution over its 141 VPs ("80%
    ... responded to over 90"); with a scaled VP population the
    comparable statistic is the fraction of VPs (90/141 ≈ 0.64).
    """
    total_vps = len(rr_survey.vps)
    fractions = [
        rr_survey.responding_vp_count(index) / total_vps
        for index in rr_survey.rr_responsive_indices()
    ]
    return Cdf(fractions)
