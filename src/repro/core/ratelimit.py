"""§4.1 / Figure 4: finding evidence of rate limiting.

Re-probe a sample of known RR-responsive destinations from every VP at
a low and a high packet rate (the paper used 10 and 100 pps against
100,000 destinations), in per-VP random order, and compare per-VP
response counts. VPs behind source-proximate options policers answer
fine at 10 pps and crater at 100 pps; VPs that answer almost nothing at
either rate (locally filtered) are excluded, as the paper excluded the
56 VPs with under 1,000 responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.survey import RRSurvey
from repro.probing.scheduler import ProbeOrder, order_destinations
from repro.rng import stable_rng
from repro.scenarios.internet import Scenario

__all__ = ["RateLimitStudy", "run_rate_limit_study"]


@dataclass
class VpRateRow:
    """One VP's response counts at both rates."""

    vp_name: str
    low_responses: int
    high_responses: int
    probed: int

    @property
    def drop_fraction(self) -> float:
        """Relative response loss going from the low to the high rate."""
        if self.low_responses == 0:
            return 0.0
        return max(0.0, 1.0 - self.high_responses / self.low_responses)


@dataclass
class RateLimitStudy:
    """Figure 4's per-VP series."""

    low_pps: float
    high_pps: float
    sample_size: int
    rows: List[VpRateRow] = field(default_factory=list)
    excluded: List[str] = field(default_factory=list)

    def severe_droppers(self, threshold: float = 0.25) -> List[VpRateRow]:
        """VPs losing more than ``threshold`` of responses at high rate."""
        return [row for row in self.rows if row.drop_fraction > threshold]

    def render(self) -> str:
        lines = [
            f"Figure 4 — RR responses per VP at {self.low_pps:g} vs "
            f"{self.high_pps:g} pps ({self.sample_size} destinations; "
            f"{len(self.excluded)} VPs excluded):",
            f"{'VP':>24} {'low':>7} {'high':>7} {'drop':>7}",
        ]
        for row in sorted(self.rows, key=lambda r: r.vp_name):
            lines.append(
                f"{row.vp_name:>24} {row.low_responses:>7} "
                f"{row.high_responses:>7} {row.drop_fraction:>6.0%}"
            )
        severe = self.severe_droppers()
        lines.append(
            f"{len(severe)} of {len(self.rows)} VPs drop >25% at "
            f"{self.high_pps:g} pps: "
            f"{sorted(row.vp_name for row in severe)}"
        )
        return "\n".join(lines)


def run_rate_limit_study(
    scenario: Scenario,
    survey: RRSurvey,
    sample_size: int = 400,
    low_pps: float = 10.0,
    high_pps: float = 100.0,
    exclusion_fraction: float = 0.01,
) -> RateLimitStudy:
    """Reproduce the §4.1 experiment.

    ``exclusion_fraction`` mirrors the paper's "fewer than 1000
    responses [out of 100,000]" cut: VPs under it at *either* rate are
    dropped from the figure.
    """
    rng = stable_rng(scenario.seed, "rate-study")
    responsive = survey.rr_responsive_indices()
    sample_indices = (
        rng.sample(responsive, sample_size)
        if len(responsive) > sample_size
        else list(responsive)
    )
    sample = [survey.dests[index] for index in sample_indices]
    study = RateLimitStudy(
        low_pps=low_pps, high_pps=high_pps, sample_size=len(sample)
    )
    prober = scenario.prober
    threshold = exclusion_fraction * len(sample)

    for vp in survey.vps:
        counts: Dict[float, int] = {}
        for rate in (low_pps, high_pps):
            # Each run is an independent probing campaign: refill every
            # policer before it starts.
            scenario.network.reset_limiters()
            ordered = order_destinations(
                sample,
                ProbeOrder.RANDOM,
                seed=scenario.seed,
                salt=(vp.name, rate),
            )
            results = prober.batch_ping_rr(
                vp, [dest.addr for dest in ordered], pps=rate
            )
            counts[rate] = sum(
                1 for result in results if result.rr_responsive
            )
        row = VpRateRow(
            vp_name=vp.name,
            low_responses=counts[low_pps],
            high_responses=counts[high_pps],
            probed=len(sample),
        )
        if min(counts.values()) < threshold:
            study.excluded.append(vp.name)
        else:
            study.rows.append(row)
    return study
