"""A RIPE-Atlas-style platform and the §3.3 what-if study.

§3.3: "Strategically choosing vantage points from other measurement
platforms, such as RIPE Atlas, could further improve coverage into
networks out of range of M-Lab. However, Atlas currently does not
allow measurements with IP Options, and their strict rate limits could
complicate the process of finding VPs in range."

This module models both halves of that sentence:

* :class:`AtlasClient` — a platform front-end that *rejects* any probe
  carrying IP options (the API restriction) and charges a credit per
  probe against a daily budget with a platform-wide rate cap;
* :func:`run_atlas_study` — the what-if: place Atlas-style probes in
  many diverse edge networks, measure the coverage they *would* add if
  options were allowed (by probing the simulated network directly,
  which the real researchers cannot do), and report the credit cost of
  the VP-hunting phase the paper worries about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.survey import RRSurvey, run_rr_survey
from repro.probing.prober import Prober
from repro.probing.results import PingResult, TracerouteResult
from repro.probing.vantage import Platform, VantagePoint, vp_addr
from repro.rng import stable_rng, stable_uniform
from repro.scenarios.internet import Scenario

__all__ = [
    "AtlasPolicyError",
    "AtlasClient",
    "AtlasStudy",
    "place_atlas_probes",
    "run_atlas_study",
]


class AtlasPolicyError(Exception):
    """A measurement the platform refuses to run."""


class AtlasClient:
    """Platform front-end: no IP options, credits, and a rate cap.

    Wraps a :class:`Prober` the way the Atlas API wraps its probes:
    researchers spend credits per measurement and cannot exceed the
    platform's aggregate rate, and any options-bearing probe type
    raises :class:`AtlasPolicyError`.
    """

    PING_COST = 1
    TRACEROUTE_COST = 10

    def __init__(
        self,
        prober: Prober,
        credit_budget: int = 10_000,
        max_pps: float = 10.0,
    ) -> None:
        if credit_budget <= 0:
            raise ValueError("credit budget must be positive")
        self.prober = prober
        self.credit_budget = credit_budget
        self.credits_spent = 0
        self.max_pps = max_pps

    @property
    def credits_remaining(self) -> int:
        return self.credit_budget - self.credits_spent

    def _charge(self, cost: int) -> None:
        if self.credits_spent + cost > self.credit_budget:
            raise AtlasPolicyError(
                f"credit budget exhausted ({self.credit_budget})"
            )
        self.credits_spent += cost

    def ping(self, vp: VantagePoint, dst: int) -> PingResult:
        self._charge(self.PING_COST)
        return self.prober.ping(vp, dst, count=1, pps=self.max_pps)

    def traceroute(self, vp: VantagePoint, dst: int) -> TracerouteResult:
        self._charge(self.TRACEROUTE_COST)
        return self.prober.traceroute(vp, dst, pps=self.max_pps)

    def ping_rr(self, *_args, **_kwargs):
        raise AtlasPolicyError(
            "the platform does not allow measurements with IP Options"
        )

    ping_rr_udp = ping_rr
    ping_ts = ping_rr


def place_atlas_probes(
    scenario: Scenario, count: int, connected_prob: float = 0.8
) -> List[VantagePoint]:
    """Scatter Atlas-style probes across diverse edge ASes.

    Real Atlas probes sit in thousands of home/enterprise networks;
    here they round-robin across *all* edge ASes (much broader than
    the M-Lab colo pool), with a realistic fraction currently
    disconnected.
    """
    probes = []
    edges = scenario.topo.edges
    for index in range(count):
        asn = edges[index % len(edges)]
        name = f"atlas-{index:04d}"
        connected = (
            stable_uniform(scenario.seed, "atlas-up", name)
            < connected_prob
        )
        probes.append(
            VantagePoint(
                name=name,
                site=f"atlas{index:04d}",
                platform=Platform.ATLAS,
                asn=asn,
                addr=vp_addr(asn, 100 + (index % 100)),
                local_filtered=not connected,
            )
        )
    return probes


@dataclass
class AtlasStudy:
    """The §3.3 what-if, quantified."""

    atlas_probe_count: int = 0
    baseline_reachable: int = 0  # M-Lab/PlanetLab coverage (dest count)
    atlas_only_reachable: int = 0  # added by Atlas IF options worked
    rr_responsive: int = 0
    hunt_credits: int = 0  # credits burned finding in-range probes
    hunt_probes: int = 0

    @property
    def coverage_gain(self) -> float:
        if not self.rr_responsive:
            return 0.0
        return self.atlas_only_reachable / self.rr_responsive

    def render(self) -> str:
        return (
            f"Atlas what-if: {self.atlas_probe_count} probes in edge "
            f"networks would add {self.atlas_only_reachable} "
            f"RR-reachable destinations "
            f"({self.coverage_gain:.1%} of the {self.rr_responsive} "
            f"RR-responsive) on top of the platform baseline of "
            f"{self.baseline_reachable} — but options probes are "
            f"refused today, and the VP hunt alone would cost "
            f"{self.hunt_credits} credits for {self.hunt_probes} "
            f"permitted measurements"
        )


def run_atlas_study(
    scenario: Scenario,
    survey: RRSurvey,
    probe_count: int = 40,
    hunt_sample: int = 25,
    client: Optional[AtlasClient] = None,
) -> AtlasStudy:
    """Quantify what Atlas-style probes would add to §3.3's coverage.

    The *hypothetical* coverage uses direct (simulator-side) RR probing
    from the Atlas probes — the thing the platform forbids; the *cost*
    side uses the policy-enforcing client for the measurements the
    platform does permit (pings/traceroutes to scout probe placement).
    """
    study = AtlasStudy(atlas_probe_count=probe_count)
    probes = place_atlas_probes(scenario, probe_count)
    working = [probe for probe in probes if not probe.local_filtered]

    baseline = set(survey.reachable_indices())
    study.baseline_reachable = len(baseline)
    study.rr_responsive = len(survey.rr_responsive_indices())

    # What the probes WOULD see with options allowed: an RR survey
    # issued from them directly against the same destination set.
    unreached = [
        survey.dests[index]
        for index in survey.rr_responsive_indices()
        if index not in baseline
    ]
    if unreached and working:
        atlas_survey = run_rr_survey(
            scenario, dests=unreached, vps=working
        )
        study.atlas_only_reachable = len(atlas_survey.reachable_indices())

    # What the hunt costs under today's rules: ping+traceroute scouting
    # from each working probe to a small destination sample.
    atlas = client or AtlasClient(scenario.prober)
    rng = stable_rng(scenario.seed, "atlas-hunt")
    dests = list(survey.dests)
    sample = (
        rng.sample(dests, hunt_sample)
        if len(dests) > hunt_sample
        else dests
    )
    for probe in working:
        for dest in sample:
            try:
                atlas.ping(probe, dest.addr)
                study.hunt_probes += 1
            except AtlasPolicyError:
                break
    study.hunt_credits = atlas.credits_spent
    return study
