"""Fusing Record Route with traceroute (the §2 combination).

"RR is not a replacement for traceroute, rather it can complement
traceroute": RR sees routers that never expire TTLs (anonymous
routers [21], some tunnel configurations), traceroute sees routers
that decrement TTL but do not stamp. This module measures exactly that
complementarity on live paths:

1. pair a traceroute and a ping-RR per (VP, destination);
2. group the observed addresses per origin AS and run MIDAR-style
   alias resolution over each group, so two interfaces of one router
   (RR records the outgoing interface, traceroute reports the
   incoming one) collapse into one device;
3. classify every inferred device as seen-by-both, RR-only, or
   traceroute-only.

Alignment at the IP level is known to be hard (§3.5 cites [20]); the
alias-assisted device-level fusion here is the tractable middle ground
between that and the paper's AS-level comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.aliases import AliasResolver
from repro.analysis.ip2as import Ip2As, build_ip2as
from repro.core.survey import RRSurvey
from repro.rng import stable_rng
from repro.scenarios.internet import Scenario

__all__ = ["PathFusion", "FusionReport", "fuse_paths"]


@dataclass
class PathFusion:
    """Device-level fusion of one (VP, destination) path pair."""

    vp_name: str
    dst: int
    traceroute_addrs: List[int] = field(default_factory=list)
    rr_forward_addrs: List[int] = field(default_factory=list)
    devices_both: int = 0
    devices_rr_only: int = 0
    devices_trace_only: int = 0

    @property
    def devices_total(self) -> int:
        return self.devices_both + self.devices_rr_only + self.devices_trace_only

    @property
    def rr_added_coverage(self) -> bool:
        """Did RR see any device traceroute missed on this path?"""
        return self.devices_rr_only > 0


@dataclass
class FusionReport:
    """Aggregate complementarity across sampled paths."""

    paths: List[PathFusion] = field(default_factory=list)

    @property
    def paths_with_rr_gain(self) -> int:
        return sum(1 for path in self.paths if path.rr_added_coverage)

    @property
    def total_rr_only(self) -> int:
        return sum(path.devices_rr_only for path in self.paths)

    @property
    def total_trace_only(self) -> int:
        return sum(path.devices_trace_only for path in self.paths)

    @property
    def total_both(self) -> int:
        return sum(path.devices_both for path in self.paths)

    def render(self) -> str:
        total = max(len(self.paths), 1)
        return (
            f"RR+traceroute fusion over {len(self.paths)} paths: "
            f"{self.total_both} devices seen by both, "
            f"{self.total_rr_only} by RR only (anonymous/tunnelled), "
            f"{self.total_trace_only} by traceroute only (non-stamping); "
            f"RR added coverage on {self.paths_with_rr_gain}/{total} "
            f"paths"
        )


def _fuse_one(
    resolver: AliasResolver,
    ip2as: Ip2As,
    trace_addrs: List[int],
    rr_addrs: List[int],
) -> Dict[str, int]:
    """Alias-collapse one path pair's addresses into device counts."""
    trace_set = set(trace_addrs)
    rr_set = set(rr_addrs)
    by_asn: Dict[Optional[int], Set[int]] = {}
    for addr in trace_set | rr_set:
        by_asn.setdefault(ip2as.asn_of(addr), set()).add(addr)
    groups = [sorted(group) for group in by_asn.values() if len(group) > 1]
    alias_sets = resolver.resolve_groups(groups) if groups else []

    # Devices = alias clusters plus singleton addresses.
    clustered: Set[int] = set()
    devices: List[Set[int]] = []
    for alias_set in alias_sets:
        devices.append(alias_set)
        clustered |= alias_set
    for addr in (trace_set | rr_set) - clustered:
        devices.append({addr})

    counts = {"both": 0, "rr_only": 0, "trace_only": 0}
    for device in devices:
        in_trace = bool(device & trace_set)
        in_rr = bool(device & rr_set)
        if in_trace and in_rr:
            counts["both"] += 1
        elif in_rr:
            counts["rr_only"] += 1
        else:
            counts["trace_only"] += 1
    return counts


def fuse_paths(
    scenario: Scenario,
    survey: RRSurvey,
    sample: int = 60,
    alias_rounds: int = 5,
    ip2as: Optional[Ip2As] = None,
) -> FusionReport:
    """Run the fusion over a sample of RR-reachable (VP, dest) pairs.

    The destination itself is excluded from both sides (its presence
    is what reachability already established); only intermediate
    devices are classified.
    """
    mapping = build_ip2as(scenario.table) if ip2as is None else ip2as
    report = FusionReport()
    rng = stable_rng(scenario.seed, "fusion")
    prober = scenario.prober

    pairs = []
    for vp_index, vp in enumerate(survey.vps):
        if vp.local_filtered:
            continue
        for dest_index in survey.reachable_from_vp(vp_index):
            pairs.append((vp, dest_index))
    if len(pairs) > sample:
        pairs = rng.sample(pairs, sample)

    for vp, dest_index in pairs:
        dest = survey.dests[dest_index]
        trace = prober.traceroute(vp, dest.addr)
        rr = prober.ping_rr(vp, dest.addr)
        if not rr.reachable:
            continue
        resolver = AliasResolver(prober, vp, rounds=alias_rounds)
        trace_addrs = [
            addr
            for addr in trace.responsive_hops()
            if addr != dest.addr
        ]
        rr_addrs = [addr for addr in rr.forward_hops() if addr != dest.addr]
        counts = _fuse_one(resolver, mapping, trace_addrs, rr_addrs)
        report.paths.append(
            PathFusion(
                vp_name=vp.name,
                dst=dest.addr,
                traceroute_addrs=trace_addrs,
                rr_forward_addrs=rr_addrs,
                devices_both=counts["both"],
                devices_rr_only=counts["rr_only"],
                devices_trace_only=counts["trace_only"],
            )
        )
    return report
