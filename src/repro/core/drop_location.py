"""Where do options packets die? (the paper's motivating statistic)

The 2005 "IP options are not an option" report found that "for 91% of
the paths that dropped them, the drops occurred at the source or
destination AS" [8] — the fact §2 reinterprets to argue RR is viable
for *measurement*: a host that isn't filtered locally can reach most
destinations that support the option.

This module reproduces that measurement. For a destination that
answers plain pings but not ping-RR, it localises the options drop:

1. a plain traceroute (options-free, so unfiltered) maps the path;
2. a TTL-limited ping-RR scan finds the deepest hop the options packet
   provably survived to (each surviving TTL elicits a Time Exceeded
   quoting the live RR header);
3. the first hop past that evidence is blamed, and its AS classified
   as source / transit / destination relative to the probing pair.

All measurement-side: the simulator's ground truth (which AS actually
filters, which host drops options) appears only in the tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.ip2as import Ip2As, build_ip2as
from repro.core.survey import PingSurvey, RRSurvey
from repro.probing.vantage import VantagePoint
from repro.rng import stable_rng
from repro.scenarios.internet import Scenario

__all__ = [
    "DropSite",
    "DropLocalization",
    "DropStudy",
    "localize_drop",
    "run_drop_study",
]


class DropSite(enum.Enum):
    """Where along the path the options packet was lost."""

    SOURCE = "source"  # the probing side (incl. filtered locally)
    TRANSIT = "transit"  # an intermediate AS
    DESTINATION = "destination"  # the destination AS or host
    DELIVERED = "delivered"  # not actually dropped (transient earlier)
    UNKNOWN = "unknown"  # not enough path evidence to say


@dataclass
class DropLocalization:
    """One localisation outcome."""

    vp_name: str
    dst: int
    site: DropSite
    deepest_surviving_ttl: int = 0
    blamed_asn: Optional[int] = None


@dataclass
class DropStudy:
    """Aggregate drop locations across probed pairs."""

    results: List[DropLocalization] = field(default_factory=list)

    def counts(self) -> Dict[DropSite, int]:
        tally = {site: 0 for site in DropSite}
        for result in self.results:
            tally[result.site] += 1
        return tally

    @property
    def edge_fraction(self) -> float:
        """Fraction of localised drops at the source or destination AS
        — the statistic the 2005 report put at 91%."""
        counts = self.counts()
        located = (
            counts[DropSite.SOURCE]
            + counts[DropSite.TRANSIT]
            + counts[DropSite.DESTINATION]
        )
        if located == 0:
            return 0.0
        edge = counts[DropSite.SOURCE] + counts[DropSite.DESTINATION]
        return edge / located

    def render(self) -> str:
        counts = self.counts()
        return (
            f"Options-drop localisation over {len(self.results)} "
            f"ping-responsive but RR-unresponsive pairs: "
            f"{counts[DropSite.SOURCE]} at the source AS, "
            f"{counts[DropSite.TRANSIT]} in transit, "
            f"{counts[DropSite.DESTINATION]} at the destination "
            f"AS/host, {counts[DropSite.DELIVERED]} delivered on "
            f"retry, {counts[DropSite.UNKNOWN]} unlocalised — "
            f"{self.edge_fraction:.0%} of located drops at the edge "
            f"(the 2005 report found 91%)"
        )


def _first_asn_at_or_after(
    trace_hops: List[Optional[int]], index: int, ip2as: Ip2As
) -> Optional[int]:
    """The AS of the first responsive traceroute hop at or after
    ``index`` (0-based)."""
    for addr in trace_hops[index:]:
        if addr is None:
            continue
        asn = ip2as.asn_of(addr)
        if asn is not None:
            return asn
    return None


def localize_drop(
    scenario: Scenario,
    vp: VantagePoint,
    dst: int,
    ip2as: Optional[Ip2As] = None,
    max_ttl: int = 20,
) -> DropLocalization:
    """Localise why ``(vp, dst)`` gets no ping-RR response."""
    mapping = build_ip2as(scenario.table) if ip2as is None else ip2as
    prober = scenario.prober
    src_asn = mapping.asn_of(vp.addr)
    dst_asn = mapping.asn_of(dst)

    deepest = 0
    for ttl in range(1, max_ttl + 1):
        result = prober.ping_rr(vp, dst, ttl=ttl)
        if result.responded:
            # The destination answered after all: the earlier failure
            # was transient (loss / rate limiting), not a filter.
            return DropLocalization(
                vp_name=vp.name,
                dst=dst,
                site=DropSite.DELIVERED,
                deepest_surviving_ttl=ttl,
            )
        if result.ttl_exceeded:
            deepest = ttl

    if deepest == 0:
        # The options packet never got far enough for any router to
        # report it: dropped at (or immediately after) the source.
        return DropLocalization(
            vp_name=vp.name, dst=dst, site=DropSite.SOURCE,
            deepest_surviving_ttl=0,
        )

    trace = prober.traceroute(vp, dst, max_ttl=max_ttl)
    blamed_asn = _first_asn_at_or_after(trace.hops, deepest, mapping)
    if blamed_asn is None:
        return DropLocalization(
            vp_name=vp.name,
            dst=dst,
            site=DropSite.UNKNOWN,
            deepest_surviving_ttl=deepest,
        )
    if blamed_asn == dst_asn:
        site = DropSite.DESTINATION
    elif blamed_asn == src_asn:
        site = DropSite.SOURCE
    else:
        site = DropSite.TRANSIT
    return DropLocalization(
        vp_name=vp.name,
        dst=dst,
        site=site,
        deepest_surviving_ttl=deepest,
        blamed_asn=blamed_asn,
    )


def run_drop_study(
    scenario: Scenario,
    ping_survey: PingSurvey,
    rr_survey: RRSurvey,
    sample: int = 60,
    vp: Optional[VantagePoint] = None,
    ip2as: Optional[Ip2As] = None,
) -> DropStudy:
    """Localise drops for a sample of pingable-but-RR-dark pairs.

    Candidates are destinations that answered the origin's plain pings
    but never answered the probing VP's ping-RR (per the survey).
    """
    mapping = build_ip2as(scenario.table) if ip2as is None else ip2as
    study = DropStudy()
    probe_vp = vp or next(
        vp for vp in rr_survey.vps if not vp.local_filtered
    )
    vp_index = rr_survey.vp_indices(names=[probe_vp.name])[0]

    candidates = []
    for index, dest in enumerate(rr_survey.dests):
        if not ping_survey.is_responsive(dest.addr):
            continue
        if vp_index in rr_survey.responses[index]:
            continue  # this VP heard it: no drop on this pair
        candidates.append(dest)
    rng = stable_rng(scenario.seed, "drop-study")
    if len(candidates) > sample:
        candidates = rng.sample(candidates, sample)

    for dest in candidates:
        study.results.append(
            localize_drop(scenario, probe_vp, dest.addr, ip2as=mapping)
        )
    return study
