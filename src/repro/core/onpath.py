"""On-path tests with prespecified IP Timestamps (extension).

Reverse traceroute [11] pairs Record Route with *prespecified*
Timestamp probes: a ping-TS that names specific router addresses gets
its slots filled only if those devices actually process the packet, so
a filled slot is positive evidence the named router is on the
round-trip path. The paper cites this machinery as the context for its
RR reassessment; this module implements it as the natural companion
primitive.

The test is conservative in exactly the ways the real one is:

* only devices that honor options stamp, so a missing timestamp is
  *not* proof of absence (returns ``False``, meaning "unconfirmed");
* slots are consumed in order, so the first prespecified address must
  be encountered first;
* the destination must answer a ping-TS at all, or the result is
  ``None`` ("untestable").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.net.timestamp import TsFlag
from repro.probing.prober import Prober
from repro.probing.vantage import VantagePoint

__all__ = ["OnPathResult", "confirm_on_path", "on_path_sweep"]


@dataclass(frozen=True)
class OnPathResult:
    """Outcome of one prespecified-timestamp on-path test."""

    vp_name: str
    dst: int
    candidate: int
    testable: bool  # destination answered a ping-TS
    confirmed: bool  # candidate's slot came back stamped

    @property
    def verdict(self) -> str:
        if not self.testable:
            return "untestable"
        return "on-path" if self.confirmed else "unconfirmed"


def confirm_on_path(
    prober: Prober,
    vp: VantagePoint,
    dst: int,
    candidate: int,
    pps: Optional[float] = None,
) -> OnPathResult:
    """Test whether ``candidate`` is on the round-trip path to ``dst``.

    Issues one prespecified ping-TS naming the candidate address. A
    filled slot is definitive presence; an empty slot means absence *or*
    a non-stamping device — reported as unconfirmed, never as absence.
    """
    result = prober.ping_ts(
        vp, dst, flag=TsFlag.TS_PRESPEC, prespecified=[candidate], pps=pps
    )
    return OnPathResult(
        vp_name=vp.name,
        dst=dst,
        candidate=candidate,
        testable=result.responded and result.reply_has_ts,
        confirmed=result.responded and result.stamped_addr(candidate),
    )


def on_path_sweep(
    prober: Prober,
    vp: VantagePoint,
    dst: int,
    candidates: Sequence[int],
    pps: Optional[float] = None,
) -> List[OnPathResult]:
    """Test a batch of candidate addresses, one probe per candidate.

    One address per probe keeps the in-order slot-consumption rule from
    masking later candidates (a probe naming four addresses only tests
    the first until it stamps), at the cost of more probes — the
    trade-off reverse traceroute makes too.
    """
    if len(set(candidates)) != len(candidates):
        raise ValueError("duplicate candidate addresses")
    return [
        confirm_on_path(prober, vp, dst, candidate, pps=pps)
        for candidate in candidates
    ]
