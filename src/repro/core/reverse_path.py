"""Reverse-path measurement with spare RR slots (§2's motivation).

The destination copies the probe's RR option into its Echo Reply, so
any slots left after the destination's own stamp get filled by
*reverse-path* routers — the only general way to see the path back
from a destination, and the primitive reverse traceroute [11] builds
on. A destination within eight RR hops leaves at least one spare slot;
that is why §3.3 highlights the fraction of destinations within eight
hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.ip2as import Ip2As, build_ip2as
from repro.core.reachability import REVERSE_PATH_HOP_LIMIT
from repro.core.survey import RRSurvey
from repro.probing.vantage import VantagePoint
from repro.scenarios.internet import Scenario

__all__ = ["ReversePathMeasurement", "measure_reverse_path", "reverse_coverage"]


@dataclass
class ReversePathMeasurement:
    """One successful reverse-path observation."""

    vp_name: str
    dst: int
    dest_slot: int
    forward_hops: List[int] = field(default_factory=list)
    reverse_hops: List[int] = field(default_factory=list)
    forward_as_path: List[int] = field(default_factory=list)
    reverse_as_path: List[int] = field(default_factory=list)

    @property
    def spare_slots_used(self) -> int:
        return len(self.reverse_hops)

    @property
    def asymmetric(self) -> bool:
        """True when the visible reverse ASes differ from the forward
        ones — the routing asymmetry traceroute alone cannot see."""
        return (
            bool(self.reverse_as_path)
            and self.reverse_as_path != list(reversed(self.forward_as_path))
        )


def measure_reverse_path(
    scenario: Scenario,
    vp: VantagePoint,
    dst: int,
    ip2as: Optional[Ip2As] = None,
) -> Optional[ReversePathMeasurement]:
    """Issue one ping-RR and decode forward/reverse hops from the reply.

    Returns None when the destination did not respond, did not stamp
    itself, or left no spare slots (beyond the nine-hop limit minus
    one, i.e. farther than eight hops).
    """
    mapping = build_ip2as(scenario.table) if ip2as is None else ip2as
    result = scenario.prober.ping_rr(vp, dst)
    slot = result.dest_slot()
    if not result.rr_responsive or slot is None:
        return None
    if slot > REVERSE_PATH_HOP_LIMIT:
        return None
    forward = result.forward_hops()
    reverse = result.reverse_hops()
    return ReversePathMeasurement(
        vp_name=vp.name,
        dst=dst,
        dest_slot=slot,
        forward_hops=forward,
        reverse_hops=reverse,
        forward_as_path=mapping.as_path_of(forward),
        reverse_as_path=mapping.as_path_of(reverse),
    )


def reverse_coverage(
    survey: RRSurvey, hop_limit: int = REVERSE_PATH_HOP_LIMIT
) -> float:
    """Fraction of RR-responsive destinations within the reverse-path
    hop limit of some VP (§3.3's "~60% within eight hops")."""
    responsive = eligible = 0
    for index in range(len(survey.dests)):
        if not survey.rr_responsive(index):
            continue
        responsive += 1
        slot = survey.min_slot(index)
        if slot is not None and slot <= hop_limit:
            eligible += 1
    return eligible / responsive if responsive else 0.0
