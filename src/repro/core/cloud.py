"""§3.6 / Figure 3: could RR be useful to cloud providers?

The paper could not issue ping-RR from clouds (the providers filter or
strip options), so it *estimates* cloud RR range from traceroute hop
counts: if a cloud's traceroute path-length distribution to a set of
destinations sits left of the M-Lab distribution to destinations
*known* to be RR-reachable from M-Lab, those destinations are very
likely within RR range of the cloud too.

Method reproduced here:

* traceroute from each M-Lab VP to (a sample of) its RR-reachable
  destinations — the calibration distribution;
* traceroute from each cloud VP to samples of RR-reachable and
  RR-responsive-but-unreachable destinations, counting hops **from the
  first hop outside the provider's AS** (the paper assumes clouds can
  tunnel to their AS edge without consuming RR slots);
* join the two datasets by /24, as the paper did to match its 2015
  cloud traceroutes against 2017 RR data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cdf import Cdf
from repro.analysis.ip2as import Ip2As, build_ip2as
from repro.core.survey import RRSurvey
from repro.probing.results import TracerouteResult
from repro.probing.vantage import Platform
from repro.rng import stable_rng
from repro.scenarios.internet import Scenario

__all__ = ["CloudStudy", "run_cloud_study", "external_hop_count"]


def external_hop_count(
    trace: TracerouteResult, provider_asn: int, ip2as: Ip2As
) -> Optional[int]:
    """Hop count starting at the first hop outside the provider AS.

    Returns None when the destination was not reached. Unresponsive
    leading hops are conservatively treated as in-provider only if we
    have not yet seen an external hop.
    """
    if not trace.reached:
        return None
    external = 0
    seen_external = False
    for addr in trace.hops:
        if not seen_external:
            if addr is None:
                continue
            asn = ip2as.asn_of(addr)
            if asn == provider_asn:
                continue
            seen_external = True
        external += 1
    return external if seen_external else 0


@dataclass
class CloudStudy:
    """Figure 3's series plus the §3.6 headline fractions."""

    #: label -> sorted traceroute hop counts (the CDF samples).
    samples: Dict[str, List[int]] = field(default_factory=dict)
    #: per provider: fraction of RR-responsive dests within 8 hops.
    within8: Dict[str, float] = field(default_factory=dict)
    #: fraction of cloud RR-responsive dests within 5 hops (GCE claim).
    gce_within5: float = 0.0
    mlab_within5: float = 0.0

    def series(
        self, label: str, max_hops: int = 20
    ) -> List[Tuple[int, float]]:
        cdf = Cdf(self.samples.get(label, []))
        return [(hops, cdf.at(hops)) for hops in range(1, max_hops + 1)]

    def render(self) -> str:
        lines = ["Figure 3 — traceroute hop-count CDFs:"]
        xs = list(range(2, 21, 2))
        lines.append("hops:".rjust(28) + "".join(f"{x:>6}" for x in xs))
        for label in sorted(self.samples):
            cdf = Cdf(self.samples[label])
            lines.append(
                f"{label:>27} "
                + "".join(f"{cdf.at(x):6.2f}" for x in xs)
                + f"  (n={len(cdf)})"
            )
        for provider, fraction_within in sorted(self.within8.items()):
            lines.append(
                f"{provider}: within 8 hops of "
                f"{fraction_within:.0%} of RR-responsive destinations"
            )
        lines.append(
            f"gce within 5 hops of {self.gce_within5:.0%} of RR-responsive "
            f"dests; M-Lab within 5 of {self.mlab_within5:.0%} of its "
            f"RR-reachable dests"
        )
        return "\n".join(lines)


def _slash24(addr: int) -> int:
    return addr >> 8


def run_cloud_study(
    scenario: Scenario,
    survey: RRSurvey,
    sample_per_class: int = 300,
    mlab_sample: int = 300,
    ip2as: Optional[Ip2As] = None,
) -> CloudStudy:
    """Reproduce Figure 3 and the §3.6 within-8-hop estimates."""
    mapping = build_ip2as(scenario.table) if ip2as is None else ip2as
    study = CloudStudy()
    prober = scenario.prober
    rng = stable_rng(scenario.seed, "cloud-study")

    reachable = survey.reachable_indices()
    responsive_only = [
        index
        for index in survey.rr_responsive_indices()
        if survey.min_slot(index) is None
    ]

    # M-Lab calibration: closest VP's traceroute to reachable dests.
    mlab_indices = survey.vp_indices(
        platform=Platform.MLAB, include_filtered=False
    )
    mlab_targets = (
        rng.sample(reachable, mlab_sample)
        if len(reachable) > mlab_sample
        else list(reachable)
    )
    mlab_lengths: Dict[int, int] = {}  # /24 -> hops
    for dest_index in mlab_targets:
        dest = survey.dests[dest_index]
        closest = min(
            (
                (survey.slot_from_vp(dest_index, vp_index), vp_index)
                for vp_index in mlab_indices
                if survey.slot_from_vp(dest_index, vp_index) is not None
            ),
            default=None,
        )
        if closest is None:
            continue
        vp = survey.vps[closest[1]]
        trace = prober.traceroute(vp, dest.addr)
        if trace.reached and trace.hop_count is not None:
            mlab_lengths[_slash24(dest.addr)] = trace.hop_count
    study.samples["M-Lab RR-reachable"] = sorted(mlab_lengths.values())

    # Cloud traceroutes, joined to the RR survey by /24.
    reachable_24 = {_slash24(survey.dests[i].addr) for i in reachable}
    for vp in scenario.cloud_vps:
        provider = vp.site  # "gce", "ec2", "softlayer"
        lengths_reach: Dict[int, int] = {}
        lengths_resp: Dict[int, int] = {}
        for label, pool, sink in (
            ("reach", reachable, lengths_reach),
            ("resp", responsive_only, lengths_resp),
        ):
            sample = (
                rng.sample(pool, sample_per_class)
                if len(pool) > sample_per_class
                else list(pool)
            )
            for dest_index in sample:
                dest = survey.dests[dest_index]
                trace = prober.traceroute(vp, dest.addr)
                hops = external_hop_count(trace, vp.asn, mapping)
                if hops is not None:
                    sink[_slash24(dest.addr)] = hops
        # /24 join against the RR survey's classification.
        reach_joined = [
            hops
            for key, hops in lengths_reach.items()
            if key in reachable_24
        ]
        resp_joined = list(lengths_resp.values())
        study.samples[f"{provider} RR-reachable"] = sorted(reach_joined)
        study.samples[f"{provider} RR-responsive"] = sorted(resp_joined)
        both = reach_joined + resp_joined
        if both:
            within = sum(1 for hops in both if hops <= 8)
            study.within8[provider] = within / len(both)

    gce = study.samples.get("gce RR-responsive", [])
    if gce:
        study.gce_within5 = sum(1 for hops in gce if hops <= 5) / len(gce)
    mlab = study.samples.get("M-Lab RR-reachable", [])
    if mlab:
        study.mlab_within5 = sum(1 for h in mlab if h <= 5) / len(mlab)
    return study
