"""The two measurement studies of §3.1.

* The **ping survey**: three plain pings to every hitlist destination
  from a single origin machine (the paper's USC host), defining
  *ping-responsive*.
* The **RR survey**: one ``ping-RR`` from every vantage point to every
  destination at a paced 20 pps in per-VP random order, defining
  *RR-responsive* (some VP got an Echo Reply with the option copied)
  and *RR-reachable* (the destination's address appears in the RR
  header — the paper's test, false negatives and all).

:class:`RRSurvey` stores, per destination, a compact map from VP index
to the destination's 1-based RR slot (or None when the destination
address is absent from the header), plus any same-/24 addresses seen
in RR headers (the §3.3 alias-candidate pool). All downstream analyses
— Table 1, Figures 1/2, greedy VP selection, reclassification — read
from this structure.
"""

from __future__ import annotations

import gzip
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.net.addr import parse_prefix, same_slash24
from repro.probing.artifacts import (
    atomic_write_bytes,
    canonical_json_bytes,
    embed_checksum,
    verify_embedded_checksum,
)
from repro.obs.spans import TRACER
from repro.obs.timing import timed
from repro.probing.prober import DEFAULT_PPS
from repro.probing.scheduler import ProbeOrder, order_destinations
from repro.probing.vantage import Platform, VantagePoint
from repro.scenarios.internet import Scenario
from repro.topology.hitlist import Destination

__all__ = [
    "PingSurvey",
    "RRSurvey",
    "SurveyFormatError",
    "run_ping_survey",
    "run_rr_survey",
    "save_survey",
    "load_survey",
    "PING_SHARDS",
]


class SurveyFormatError(ValueError):
    """A survey (or checkpoint) artifact on disk is unreadable.

    Raised with the offending path and a human-readable reason instead
    of leaking ``json.JSONDecodeError`` / ``EOFError`` / gzip internals
    to the caller — load-bearing once ``--resume`` reads checkpoints
    written by possibly-killed campaigns.
    """

    def __init__(self, path: Union[str, Path], reason: str) -> None:
        super().__init__(str(path), reason)
        self.path = str(path)
        self.reason = reason

    def __str__(self) -> str:
        return f"{self.path}: {self.reason}"

#: Fixed shard count for the parallel ping survey. Destinations are
#: dealt round-robin into this many shards regardless of ``jobs``, so
#: any ``jobs >= 2`` run produces identical results (each shard is one
#: deterministic loss-stream session; see DESIGN.md).
PING_SHARDS = 8

#: Destinations per ``probe_batch`` span when tracing is enabled.
#: With tracing off, a VP's whole walk is one batch, so the loop costs
#: a single no-op context entry — spans never touch the per-probe path.
PROBE_BATCH_SPAN = 256

#: One VP's compact survey contribution:
#: ``(rows, inprefix, quality)`` where rows = [(dest_index,
#: slot-or-None), ...] in probe order, inprefix = [(dest_index,
#: (addr, ...)), ...], and quality is the validation summary dict
#: (see :func:`repro.probing.validation.empty_quality`): verdict and
#: reason counters plus the quarantined/degraded record lists. Rows
#: only ever contain validated replies — quarantined destinations
#: live exclusively in the quality block.
VPRows = Tuple[
    List[Tuple[int, Optional[int]]],
    List[Tuple[int, Tuple[int, ...]]],
    dict,
]


@dataclass
class PingSurvey:
    """Plain-ping responsiveness from the origin host."""

    origin_name: str
    responsive: Dict[int, bool] = field(default_factory=dict)

    def is_responsive(self, addr: int) -> bool:
        return self.responsive.get(addr, False)

    @property
    def responsive_count(self) -> int:
        return sum(1 for answered in self.responsive.values() if answered)


@dataclass
class RRSurvey:
    """The all-VPs ping-RR matrix, in analysis-ready form."""

    vps: List[VantagePoint]
    dests: List[Destination]
    #: Per destination: vp_index -> destination slot (1-based) for every
    #: VP that received an RR-copying Echo Reply; None = dest absent.
    responses: List[Dict[int, Optional[int]]] = field(default_factory=list)
    #: Per destination: other same-/24 addresses seen in its RR replies.
    inprefix_addrs: List[Set[int]] = field(default_factory=list)
    rr_slots: int = 9

    # -- indexing ---------------------------------------------------------

    def index_of_addr(self, addr: int) -> int:
        try:
            return self._addr_index[addr]
        except AttributeError:
            self._addr_index = {
                dest.addr: i for i, dest in enumerate(self.dests)
            }
            return self._addr_index[addr]

    def vp_indices(
        self,
        platform: Optional[Platform] = None,
        sites: Optional[Iterable[str]] = None,
        names: Optional[Iterable[str]] = None,
        include_filtered: bool = True,
    ) -> List[int]:
        """Select VP indices by platform, site, or name."""
        wanted_sites = None if sites is None else set(sites)
        wanted_names = None if names is None else set(names)
        picked = []
        for index, vp in enumerate(self.vps):
            if platform is not None and vp.platform is not platform:
                continue
            if wanted_sites is not None and vp.site not in wanted_sites:
                continue
            if wanted_names is not None and vp.name not in wanted_names:
                continue
            if not include_filtered and vp.local_filtered:
                continue
            picked.append(index)
        return picked

    # -- per-destination views ------------------------------------------------

    def rr_responsive(self, dest_index: int) -> bool:
        """§3.1: at least one VP received an RR-copying Echo Reply."""
        return bool(self.responses[dest_index])

    def responding_vp_count(self, dest_index: int) -> int:
        return len(self.responses[dest_index])

    def min_slot(
        self, dest_index: int, vp_indices: Optional[Sequence[int]] = None
    ) -> Optional[int]:
        """Closest-VP RR distance: the smallest slot the destination's
        address occupies across the selected VPs (None = unreachable)."""
        observed = self.responses[dest_index]
        best: Optional[int] = None
        indices = observed.keys() if vp_indices is None else vp_indices
        for vp_index in indices:
            slot = observed.get(vp_index)
            if slot is not None and (best is None or slot < best):
                best = slot
        return best

    def reachable(
        self, dest_index: int, vp_indices: Optional[Sequence[int]] = None
    ) -> bool:
        return self.min_slot(dest_index, vp_indices) is not None

    def slot_from_vp(self, dest_index: int, vp_index: int) -> Optional[int]:
        return self.responses[dest_index].get(vp_index)

    # -- aggregate views ---------------------------------------------------

    def rr_responsive_indices(self) -> List[int]:
        return [
            index
            for index in range(len(self.dests))
            if self.responses[index]
        ]

    def reachable_indices(
        self, vp_indices: Optional[Sequence[int]] = None
    ) -> List[int]:
        return [
            index
            for index in range(len(self.dests))
            if self.min_slot(index, vp_indices) is not None
        ]

    def reachable_from_vp(self, vp_index: int) -> List[int]:
        """Destinations whose address this VP saw in an RR header."""
        return [
            index
            for index in range(len(self.dests))
            if self.responses[index].get(vp_index) is not None
        ]


def _is_gzip_path(path: Union[str, Path]) -> bool:
    """Auto-detect compressed survey artifacts by the ``.gz`` suffix."""
    return str(path).endswith(".gz")


def save_survey(survey: RRSurvey, path: Union[str, Path]) -> None:
    """Persist a completed RR survey as JSON (gzipped for ``*.gz``).

    Campaigns are the expensive artifact; saving them lets analyses
    (and future sessions) run without re-probing. Everything needed to
    reconstruct the survey — VPs, destinations, per-destination
    observations — is stored; the scenario itself is not (surveys are
    measurement data, independent of the world that produced them).

    A ``.json.gz`` (or any ``.gz``) path writes a deterministic gzip
    stream (``mtime=0``), so large campaign artifacts stay small and
    byte-comparable across runs.

    Integrity: the record carries an embedded sha256 over its
    canonical JSON bytes (verified by :func:`load_survey`), and the
    file lands through the shared atomic write-rename helper, so a
    crashed save can never leave a torn artifact behind.
    """
    record = {
        "version": 1,
        "rr_slots": survey.rr_slots,
        "vps": [
            {
                "name": vp.name,
                "site": vp.site,
                "platform": vp.platform.value,
                "asn": vp.asn,
                "addr": vp.addr,
                "local_filtered": vp.local_filtered,
            }
            for vp in survey.vps
        ],
        "dests": [
            {
                "addr": dest.addr,
                "prefix": str(dest.prefix),
                "asn": dest.asn,
            }
            for dest in survey.dests
        ],
        "responses": [
            {str(vp_index): slot for vp_index, slot in observed.items()}
            for observed in survey.responses
        ],
        "inprefix_addrs": [
            sorted(addrs) for addrs in survey.inprefix_addrs
        ],
    }
    data = canonical_json_bytes(embed_checksum(record))
    if _is_gzip_path(path):
        # mtime=0 keeps the compressed bytes deterministic, so the
        # parallel-vs-serial parity bar applies to .json.gz too.
        atomic_write_bytes(path, gzip.compress(data, mtime=0))
    else:
        atomic_write_bytes(path, data)


def load_json_artifact(
    path: Union[str, Path], kind: str = "artifact"
) -> dict:
    """Read + parse a (possibly gzipped) JSON artifact, or raise
    :class:`SurveyFormatError` with the path and a clear reason.

    Shared by :func:`load_survey` and the campaign checkpoint loader:
    truncated gzip streams (``EOFError``), corrupt gzip headers
    (``gzip.BadGzipFile``), truncated/garbage JSON
    (``json.JSONDecodeError``), and non-UTF-8 bytes all surface as the
    same well-labelled error. A missing file stays a
    ``FileNotFoundError`` — absence and corruption are different
    failures.

    If the record carries an embedded content checksum (every artifact
    written since checksums existed does), it is recomputed over the
    parsed record's canonical bytes and compared; a mismatch raises
    :class:`SurveyFormatError` and is counted in
    ``artifact_checksum_failures_total{kind}``. The checksum field is
    stripped from the returned record.
    """
    raw = Path(path).read_bytes()
    if _is_gzip_path(path):
        try:
            raw = gzip.decompress(raw)
        except EOFError:
            raise SurveyFormatError(
                path, "truncated gzip stream (file cut short?)"
            ) from None
        except (gzip.BadGzipFile, zlib.error, OSError) as exc:
            raise SurveyFormatError(
                path, f"corrupt gzip data: {exc}"
            ) from None
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SurveyFormatError(path, f"not UTF-8: {exc}") from None
    try:
        record = json.loads(text)
    except json.JSONDecodeError as exc:
        reason = "truncated JSON" if not text.strip() else f"invalid JSON: {exc}"
        raise SurveyFormatError(path, reason) from None
    if not isinstance(record, dict):
        raise SurveyFormatError(
            path, f"expected a JSON object, got {type(record).__name__}"
        )
    body, checksum_error = verify_embedded_checksum(record, kind=kind)
    if checksum_error is not None:
        raise SurveyFormatError(path, checksum_error)
    return body


def load_survey(path: Union[str, Path]) -> RRSurvey:
    """Load a survey written by :func:`save_survey` (``.gz`` aware).

    Raises :class:`SurveyFormatError` (with path + reason) on
    truncated, corrupt, checksum-mismatched, or wrong-version
    artifacts.
    """
    record = load_json_artifact(path, kind="survey")
    if record.get("version") != 1:
        raise SurveyFormatError(
            path,
            f"unsupported survey file version {record.get('version')!r}",
        )
    try:
        vps = [
            VantagePoint(
                name=vp["name"],
                site=vp["site"],
                platform=Platform(vp["platform"]),
                asn=vp["asn"],
                addr=vp["addr"],
                local_filtered=vp["local_filtered"],
            )
            for vp in record["vps"]
        ]
        dests = [
            Destination(
                addr=dest["addr"],
                prefix=parse_prefix(dest["prefix"]),
                asn=dest["asn"],
            )
            for dest in record["dests"]
        ]
        return RRSurvey(
            vps=vps,
            dests=dests,
            responses=[
                {int(vp_index): slot for vp_index, slot in observed.items()}
                for observed in record["responses"]
            ],
            inprefix_addrs=[
                set(addrs) for addrs in record["inprefix_addrs"]
            ],
            rr_slots=record["rr_slots"],
        )
    except (KeyError, TypeError, AttributeError, ValueError) as exc:
        if isinstance(exc, SurveyFormatError):
            raise
        raise SurveyFormatError(
            path, f"malformed survey record: {type(exc).__name__}: {exc}"
        ) from exc


#: Re-probe rounds granted to a destination whose RR replies fail
#: validation before it degrades to plain ping.
RR_INVALID_RETRIES = 2


def probe_vp_rr(
    scenario: Scenario,
    vp: VantagePoint,
    targets: Sequence[Destination],
    position: Dict[int, int],
    order: ProbeOrder = ProbeOrder.RANDOM,
    slots: int = 9,
    pps: float = DEFAULT_PPS,
    heartbeat: Optional[Callable[[], None]] = None,
    validate: bool = True,
    rr_invalid_retries: int = RR_INVALID_RETRIES,
) -> VPRows:
    """One vantage point's complete ping-RR probe sequence.

    This is the unit of work the parallel engine shards: the VP's full
    destination walk runs inside its own deterministic probe session
    (fresh token buckets, a per-VP loss stream seeded from
    ``(seed, vp.name)``), so the result rows are byte-identical whether
    this executes in the serial loop or in a worker process — the
    engine's determinism contract (see DESIGN.md).

    ``heartbeat``, if given, is invoked once per destination *before*
    the probe is issued — the supervision layer's per-task progress
    ping (see :mod:`repro.faults.supervisor`). It must not touch
    network state; the default ``None`` keeps the hot loop free of
    even the call overhead.

    ``validate`` runs every collected reply through the
    :class:`~repro.probing.validation.ReplyValidator` *after* the full
    walk (never per dispatch chunk, so span-tracing's batch size
    cannot leak into verdicts). Invalid replies are quarantined into
    the returned quality block instead of the rows, re-probed up to
    ``rr_invalid_retries`` times (non-sticky misbehavior can recover),
    and finally degraded to a plain ping with a recorded reason — the
    paper's framing that RR is *an* option, not the only one. On a
    clean network validation finds nothing, so rows and in-prefix
    bytes are identical with it on or off.
    """
    from repro.probing.validation import (
        INVALID,
        ReplyValidator,
        empty_quality,
        rr_degradation_counter,
    )

    network = scenario.network
    network.begin_vp_session(vp.name)
    pairs: List[Tuple[Destination, object]] = []
    quality = empty_quality()
    replaced: Dict[int, object] = {}
    invalid: Dict[int, Tuple[Destination, str]] = {}
    try:
        with TRACER.span(
            "vp_probe", clock=network.clock,
            vp=vp.name, targets=len(targets),
        ):
            with timed("rr_survey_vp"):
                ordered = order_destinations(
                    targets, order, seed=scenario.seed, salt=vp.name
                )
                # Identical walk either way: batching only changes how
                # often the (possibly no-op) span context is entered.
                step = (
                    PROBE_BATCH_SPAN
                    if TRACER.enabled
                    else max(len(ordered), 1)
                )
                for start in range(0, len(ordered), step):
                    chunk = ordered[start:start + step]
                    with TRACER.span(
                        "probe_batch", clock=network.clock,
                        batch=start // step, size=len(chunk),
                    ):
                        # One dispatch per chunk: the prober replays
                        # compiled stamp plans (or walks hop-by-hop on
                        # the fallback paths) and hands back outcomes
                        # with slot/in-prefix views precomputed.
                        pairs.extend(scenario.prober.probe_batch_rows(
                            vp, chunk, slots=slots, pps=pps,
                            heartbeat=heartbeat,
                        ))
                if validate:
                    validator = ReplyValidator(
                        vp.name, slots, position,
                        network.registry, network.net_id,
                    )
                    verdicts = validator.check_batch(pairs, round_no=0)
                    for (dest, _outcome), (verdict, reason) in zip(
                        pairs, verdicts
                    ):
                        if verdict == INVALID:
                            invalid[dest.addr] = (dest, reason)
                    # Retry rounds: re-probe only the invalid
                    # destinations, in probe order. A non-sticky
                    # misbehavior re-rolls per round, so a retry can
                    # come back clean and reclaim its row.
                    for round_no in range(1, max(rr_invalid_retries, 0) + 1):
                        if not invalid:
                            break
                        retry = scenario.prober.probe_batch_rows(
                            vp,
                            [dest for dest, _ in invalid.values()],
                            slots=slots, pps=pps, heartbeat=heartbeat,
                            round_no=round_no,
                        )
                        retry_verdicts = validator.check_batch(
                            retry, round_no=round_no
                        )
                        still: Dict[int, Tuple[Destination, str]] = {}
                        for (dest, outcome), (verdict, reason) in zip(
                            retry, retry_verdicts
                        ):
                            if verdict == INVALID:
                                still[dest.addr] = (dest, reason)
                            else:
                                replaced[dest.addr] = outcome
                        invalid = still
                    quality = validator.summary()
                    # Degradation: destinations whose RR replies never
                    # validated fall back to one plain ping — still a
                    # liveness datapoint, recorded with its reason but
                    # never a survey row.
                    degraded_family = rr_degradation_counter(
                        network.registry
                    )
                    for dest, reason in invalid.values():
                        if heartbeat is not None:
                            heartbeat()
                        result = scenario.prober.ping(
                            vp, dest.addr, count=1, pps=pps
                        )
                        quality["degraded"].append({
                            "vp": vp.name,
                            "dest": dest.addr,
                            "dest_index": position[dest.addr],
                            "reason": reason,
                            "rounds": max(rr_invalid_retries, 0) + 1,
                            "ping_responded": result.responded,
                        })
                        degraded_family.labels(
                            network.net_id, reason
                        ).inc()
                    quality["degraded"].sort(
                        key=lambda r: r["dest_index"]
                    )
    finally:
        network.end_vp_session()
    rows: List[Tuple[int, Optional[int]]] = []
    inprefix: Dict[int, Set[int]] = {}
    for dest, outcome in pairs:
        if dest.addr in invalid:
            continue  # quarantined (and possibly degraded) — no row
        outcome = replaced.get(dest.addr, outcome)
        if not outcome.rr_responsive:
            continue
        dest_index = position[dest.addr]
        rows.append((dest_index, outcome.dest_slot))
        if outcome.inprefix:
            inprefix.setdefault(dest_index, set()).update(outcome.inprefix)
    packed = sorted(
        (dest_index, tuple(sorted(addrs)))
        for dest_index, addrs in inprefix.items()
    )
    return rows, packed, quality


def probe_ping_shard(
    scenario: Scenario,
    shard_index: int,
    targets: Sequence[Destination],
    count: int = 3,
    pps: float = DEFAULT_PPS,
) -> List[Tuple[int, bool]]:
    """One fixed shard of the origin plain-ping study.

    Sharding uses :data:`PING_SHARDS` deterministic loss-stream
    sessions regardless of worker count, so any parallel degree yields
    the same survey.
    """
    origin = scenario.origin
    assert origin is not None
    network = scenario.network
    network.begin_vp_session(f"{origin.name}/ping-shard-{shard_index}")
    try:
        with TRACER.span(
            "ping_shard", clock=network.clock,
            shard=shard_index, targets=len(targets),
        ):
            results = scenario.prober.probe_batch_ping(
                origin, list(targets), count=count, pps=pps
            )
            out = [
                (dest.addr, result.responded)
                for dest, result in zip(targets, results)
            ]
    finally:
        network.end_vp_session()
    return out


def run_ping_survey(
    scenario: Scenario,
    dests: Optional[Sequence[Destination]] = None,
    count: int = 3,
    pps: float = DEFAULT_PPS,
    jobs: int = 1,
) -> PingSurvey:
    """The origin-host plain-ping study (§3.1's second study).

    ``jobs >= 2`` fans :data:`PING_SHARDS` destination shards out
    across a process pool; any parallel degree produces identical
    results (per-shard loss sessions). ``jobs=1`` is the serial path.
    """
    if scenario.origin is None:
        raise ValueError("scenario has no origin vantage point")
    targets = list(scenario.hitlist) if dests is None else list(dests)
    survey = PingSurvey(origin_name=scenario.origin.name)
    with TRACER.span(
        "ping_survey", clock=scenario.network.clock,
        targets=len(targets), jobs=jobs or 1,
    ):
        if jobs is not None and jobs >= 2 and len(targets) > 1:
            from repro.core.parallel import ParallelSurveyRunner

            runner = ParallelSurveyRunner(scenario, jobs=jobs)
            with timed("ping_survey"):
                for addr, responded in runner.run_ping(
                    targets, count=count, pps=pps
                ):
                    survey.responsive[addr] = responded
            return survey
        with timed("ping_survey"):
            results = scenario.prober.probe_batch_ping(
                scenario.origin, targets, count=count, pps=pps
            )
            for dest, result in zip(targets, results):
                survey.responsive[dest.addr] = result.responded
    return survey


def run_rr_survey(
    scenario: Scenario,
    dests: Optional[Sequence[Destination]] = None,
    vps: Optional[Sequence[VantagePoint]] = None,
    pps: float = DEFAULT_PPS,
    order: ProbeOrder = ProbeOrder.RANDOM,
    slots: int = 9,
    jobs: int = 1,
    validate: bool = True,
) -> RRSurvey:
    """The all-VPs ping-RR study (§3.1's first study).

    Every VP (locally-filtered ones included — they simply never
    answer, as in the real study) probes every destination once, in
    its own random order, at ``pps``.

    ``jobs`` controls per-VP process fan-out: ``jobs=1`` (default)
    runs the serial path in-process; ``jobs >= 2`` shards one VP's
    full probe sequence per worker task and merges the compact result
    rows plus each worker's metrics-registry snapshot back into the
    parent. Both paths run each VP inside the same deterministic probe
    session, so the resulting :func:`save_survey` JSON is
    **byte-identical** for any ``jobs`` value on the same seed.

    ``validate=False`` skips the reply-validation pass entirely — the
    benchmark baseline for the validation-overhead gate. On a clean
    network the survey bytes are identical either way.
    """
    targets = list(scenario.hitlist) if dests is None else list(dests)
    vp_list = list(scenario.vps) if vps is None else list(vps)
    survey = RRSurvey(
        vps=vp_list,
        dests=targets,
        responses=[{} for _ in targets],
        inprefix_addrs=[set() for _ in targets],
        rr_slots=slots,
    )
    position = {dest.addr: index for index, dest in enumerate(targets)}
    with TRACER.span(
        "rr_survey", clock=scenario.network.clock,
        vps=len(vp_list), targets=len(targets), jobs=jobs or 1,
    ):
        if jobs is not None and jobs >= 2 and len(vp_list) > 1:
            from repro.core.parallel import ParallelSurveyRunner

            runner = ParallelSurveyRunner(scenario, jobs=jobs)
            with timed("rr_survey"):
                per_vp = runner.run_rr(
                    targets, vp_list, pps=pps, order=order, slots=slots,
                    validate=validate,
                )
        else:
            with timed("rr_survey"):
                per_vp = [
                    probe_vp_rr(
                        scenario, vp, targets, position,
                        order=order, slots=slots, pps=pps,
                        validate=validate,
                    )
                    for vp in vp_list
                ]
        # Merge in VP order so per-destination dict insertion order (and
        # therefore the persisted JSON) is independent of completion
        # order.
        for vp_index, (rows, inprefix, _quality) in enumerate(per_vp):
            for dest_index, slot in rows:
                survey.responses[dest_index][vp_index] = slot
            for dest_index, addrs in inprefix:
                survey.inprefix_addrs[dest_index].update(addrs)
    return survey
