"""§3.4 / Figure 2: has reachability changed between 2011 and 2016?

Runs the RR survey against two scenario "eras" and compares the
closest-VP distance CDFs, both for each era's full VP set and for the
*common* VPs — sites (by name) present in both years — which is how
the paper separates "we have more/better VPs now" from "individual VPs
are closer than they used to be".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.reachability import figure_series, fraction_reachable
from repro.core.survey import RRSurvey

__all__ = ["Figure2", "build_figure2", "common_sites"]


def common_sites(early: RRSurvey, late: RRSurvey) -> List[str]:
    """Site names present in both surveys' VP sets (platform-qualified).

    Sites are compared as ``(platform, site)`` so an M-Lab 'nyc' does
    not match a PlanetLab 'nyc'.
    """
    def keys(survey: RRSurvey) -> set:
        return {(vp.platform, vp.site) for vp in survey.vps}

    shared = keys(early) & keys(late)
    return sorted(site for _platform, site in shared)


def _common_vp_indices(survey: RRSurvey, shared: set) -> List[int]:
    return [
        index
        for index, vp in enumerate(survey.vps)
        if (vp.platform, vp.site) in shared
    ]


@dataclass
class Figure2:
    """The four Figure 2 series plus headline reachable fractions."""

    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    reachable_2016_all: float = 0.0
    reachable_2011_all: float = 0.0
    reachable_2016_common: float = 0.0
    reachable_2011_common: float = 0.0
    common_site_count: int = 0

    def render(self) -> str:
        lines = [
            "Figure 2 — RR hops from closest VP, 2011 vs 2016 (CDF):",
        ]
        xs = [x for x, _y in next(iter(self.series.values()))]
        lines.append("hops:".rjust(22) + "".join(f"{x:>7}" for x in xs))
        for label, series in self.series.items():
            lines.append(
                f"{label:>21} " + "".join(f"{y:7.3f}" for _x, y in series)
            )
        lines.append(
            f"RR-reachable fraction: 2011 all-VPs "
            f"{self.reachable_2011_all:.2f} -> 2016 all-VPs "
            f"{self.reachable_2016_all:.2f}; common VPs "
            f"({self.common_site_count} sites) "
            f"{self.reachable_2011_common:.2f} -> "
            f"{self.reachable_2016_common:.2f}"
        )
        return "\n".join(lines)


def build_figure2(
    survey_2011: RRSurvey, survey_2016: RRSurvey, max_hops: int = 9
) -> Figure2:
    """Figure 2 from the two eras' RR surveys."""
    shared = {
        (vp.platform, vp.site) for vp in survey_2011.vps
    } & {(vp.platform, vp.site) for vp in survey_2016.vps}
    common_2011 = _common_vp_indices(survey_2011, shared)
    common_2016 = _common_vp_indices(survey_2016, shared)

    figure = Figure2(common_site_count=len(shared))
    figure.series["2016 all VPs"] = figure_series(
        survey_2016, None, max_hops
    )
    figure.series["2016 common VPs"] = figure_series(
        survey_2016, common_2016, max_hops
    )
    figure.series["2011 all VPs"] = figure_series(
        survey_2011, None, max_hops
    )
    figure.series["2011 common VPs"] = figure_series(
        survey_2011, common_2011, max_hops
    )
    figure.reachable_2016_all = fraction_reachable(survey_2016)
    figure.reachable_2011_all = fraction_reachable(survey_2011)
    figure.reachable_2016_common = fraction_reachable(
        survey_2016, common_2016
    )
    figure.reachable_2011_common = fraction_reachable(
        survey_2011, common_2011
    )
    return figure
