"""§3.3's "Uncovering Additional Reachability": false-negative recovery.

The RR-reachability test (destination address appears in the RR header)
misses two kinds of genuinely in-range destinations:

1. **Alias stampers** — the destination recorded a *different* interface
   address. Recovered by MIDAR-style alias resolution over each
   unreachable destination plus the same-/24 addresses its RR replies
   contained: if an alias set links the destination to an address that
   appeared in its headers, the destination is RR-reachable.
2. **Non-honoring destinations** — the probe arrived with slots free
   but the destination never stamps. Recovered with ``ping-RRudp``:
   the port-unreachable error quotes the offending header, and free
   slots in the quote prove arrival-with-room.

The paper reclassified 5,637 + 4,358 = 9,995 destinations this way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.aliases import AliasResolver
from repro.core.survey import RRSurvey
from repro.probing.vantage import VantagePoint
from repro.scenarios.internet import Scenario

__all__ = ["ReclassificationReport", "run_reclassification"]


@dataclass
class ReclassificationReport:
    """Which unreachable-but-responsive destinations were recovered."""

    candidates: int = 0  # RR-responsive but not RR-reachable
    alias_reclassified: Set[int] = field(default_factory=set)
    udp_reclassified: Set[int] = field(default_factory=set)
    alias_sets_found: int = 0

    @property
    def total_reclassified(self) -> int:
        """Unique destinations recovered by either technique."""
        return len(self.alias_reclassified | self.udp_reclassified)

    def render(self) -> str:
        return (
            f"Reclassification: {self.candidates} RR-responsive but "
            f"unreachable candidates; {len(self.alias_reclassified)} "
            f"recovered via alias resolution "
            f"({self.alias_sets_found} alias sets), "
            f"{len(self.udp_reclassified)} via ping-RRudp quotes; "
            f"{self.total_reclassified} unique destinations reclassified "
            f"as RR-reachable"
        )


def _pick_probing_vps(
    survey: RRSurvey, limit: Optional[int]
) -> List[VantagePoint]:
    working = [vp for vp in survey.vps if not vp.local_filtered]
    return working if limit is None else working[:limit]


def run_reclassification(
    scenario: Scenario,
    survey: RRSurvey,
    max_candidates: Optional[int] = None,
    udp_vp_limit: Optional[int] = 8,
    alias_rounds: int = 5,
) -> ReclassificationReport:
    """Apply both §3.3 recovery techniques to a finished RR survey."""
    report = ReclassificationReport()
    prober = scenario.prober

    candidates = [
        index
        for index in survey.rr_responsive_indices()
        if survey.min_slot(index) is None
    ]
    if max_candidates is not None:
        candidates = candidates[:max_candidates]
    report.candidates = len(candidates)
    if not candidates:
        return report

    # -- technique 1: alias resolution over same-/24 header addresses.
    resolver_vp = next(
        (vp for vp in survey.vps if not vp.local_filtered), None
    )
    if resolver_vp is not None:
        groups = []
        group_dest: Dict[int, int] = {}
        for index in candidates:
            dest = survey.dests[index]
            neighbours = survey.inprefix_addrs[index]
            if not neighbours:
                continue
            groups.append([dest.addr] + sorted(neighbours))
            group_dest[dest.addr] = index
        if groups:
            resolver = AliasResolver(
                prober, resolver_vp, rounds=alias_rounds
            )
            alias_sets = resolver.resolve_groups(groups)
            report.alias_sets_found = len(alias_sets)
            for alias_set in alias_sets:
                for addr in alias_set:
                    index = group_dest.get(addr)
                    if index is None:
                        continue
                    # The destination shares a device with an address
                    # that appeared in its RR headers: it stamped an
                    # alias, so it is in fact RR-reachable.
                    recorded = survey.inprefix_addrs[index]
                    if recorded & (alias_set - {addr}):
                        report.alias_reclassified.add(addr)

    # -- technique 2: ping-RRudp quoted headers.
    udp_vps = _pick_probing_vps(survey, udp_vp_limit)
    still_unexplained = [
        index
        for index in candidates
        if survey.dests[index].addr not in report.alias_reclassified
    ]
    for index in still_unexplained:
        dest = survey.dests[index]
        for vp in udp_vps:
            result = prober.ping_rr_udp(vp, dest.addr)
            if result.arrived_with_room:
                report.udp_reclassified.add(dest.addr)
                break
    return report
