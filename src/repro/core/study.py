"""Full-study orchestration and shared-campaign caching.

Several experiments read the same expensive artifact — the all-VPs RR
survey plus the origin ping survey (§3.1's two studies). ``StudyData``
bundles them with the scenario, and :func:`get_study` memoises by
(preset, seed) so a test session or benchmark run probes each
simulated Internet exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.survey import (
    PingSurvey,
    RRSurvey,
    run_ping_survey,
    run_rr_survey,
)
from repro.obs.metrics import REGISTRY
from repro.obs.timing import timed
from repro.scenarios.internet import Scenario
from repro.scenarios.presets import get_preset

__all__ = [
    "StudyData",
    "run_full_study",
    "run_resilient_study",
    "get_study",
    "clear_study_cache",
]

_CACHE_LOOKUPS = REGISTRY.counter(
    "study_cache_lookups_total",
    "get_study() lookups, by result (hit = campaign reused).",
    ("result",),
)
_CACHE_HITS = _CACHE_LOOKUPS.labels("hit")
_CACHE_MISSES = _CACHE_LOOKUPS.labels("miss")
_CACHE_SIZE = REGISTRY.gauge(
    "study_cache_entries",
    "Completed campaigns currently memoised by get_study().",
)


@dataclass
class StudyData:
    """One scenario's completed §3.1 measurement campaigns."""

    scenario: Scenario
    ping_survey: PingSurvey
    rr_survey: RRSurvey

    @property
    def name(self) -> str:
        return self.scenario.name


def run_full_study(
    scenario: Scenario, jobs: int = 1, batch: bool = True
) -> StudyData:
    """Run both §3.1 studies against a scenario.

    ``jobs`` is forwarded to the survey engine: ``jobs >= 2`` fans the
    campaigns out across a per-VP process pool (see
    :mod:`repro.core.parallel`); the RR survey's persisted JSON is
    byte-identical for any value. ``batch=False`` forces the legacy
    per-hop walk (the batched dataplane is byte-identical, so this is
    a benchmarking/debugging switch, not a results switch).
    """
    scenario.prober.batching = batch
    with timed("full_study"):
        ping_survey = run_ping_survey(scenario, jobs=jobs)
        rr_survey = run_rr_survey(scenario, jobs=jobs)
    return StudyData(
        scenario=scenario, ping_survey=ping_survey, rr_survey=rr_survey
    )


def run_resilient_study(
    scenario: Scenario,
    plan=None,
    jobs: int = 1,
    max_retries: int = 3,
    budget_seconds=None,
    checkpoint_path=None,
    resume: bool = False,
    kill_after_vps=None,
    supervision=None,
    batch: bool = True,
):
    """Run both §3.1 studies with the fault-tolerant campaign driver.

    The RR survey runs under :class:`repro.faults.CampaignRunner`
    (retries, backoff budget, checkpoint/resume, graceful partial
    results); the plain-ping study runs unfaulted — the chaos model
    targets the RR slow path, and the ping survey is cheap enough to
    simply rerun. ``supervision`` (a
    :class:`repro.faults.SupervisionConfig`) opts the RR campaign into
    the watchdog/quarantine/breaker layer. Returns
    ``(StudyData, CampaignResult)``.
    """
    from repro.faults.campaign import CampaignRunner

    scenario.prober.batching = batch
    runner = CampaignRunner(
        scenario,
        plan=plan,
        jobs=jobs,
        max_retries=max_retries,
        budget_seconds=budget_seconds,
        checkpoint_path=checkpoint_path,
        kill_after_vps=kill_after_vps,
        supervision=supervision,
    )
    with timed("full_study"):
        result = runner.run(resume=resume)
        ping_survey = run_ping_survey(scenario, jobs=jobs)
    data = StudyData(
        scenario=scenario,
        ping_survey=ping_survey,
        rr_survey=result.survey,
    )
    return data, result


_CACHE: Dict[Tuple[str, int], StudyData] = {}


def get_study(
    preset: str = "small",
    seed: int = 2016,
    factory: Optional[Callable[[], Scenario]] = None,
    jobs: int = 1,
    batch: bool = True,
) -> StudyData:
    """Memoised full study for a preset scenario.

    ``factory`` overrides preset lookup (still cached under
    ``(preset, seed)``) for callers with custom scenarios. ``jobs``
    sets survey fan-out on a cache miss; like ``batch`` (the batched
    dataplane switch) it is not part of the cache key because the RR
    campaign's results are invariant under both.
    """
    key = (preset, seed)
    cached = _CACHE.get(key)
    if cached is None:
        _CACHE_MISSES.inc()
        scenario = factory() if factory is not None else get_preset(
            preset, seed
        )
        cached = run_full_study(scenario, jobs=jobs, batch=batch)
        _CACHE[key] = cached
        _CACHE_SIZE.set(len(_CACHE))
    else:
        _CACHE_HITS.inc()
    return cached


def clear_study_cache() -> None:
    _CACHE.clear()
    _CACHE_SIZE.set(0)
