"""§3.5: do ASes refuse to stamp packets?

From each (working) M-Lab VP, traceroute that VP's RR-reachable
destinations (capped per VP, as the paper capped at 10,000) and
re-issue the paired ping-RR; derive both measurements' AS sets with
ip2as; and tally, per transited AS, how often it appears in the
traceroute and how often RR saw it too. The paper's verdict counts
over 7,185 audited ASes were 2 "never", 143 "sometimes", 7,040
"always"; the audit also serves as the paper's proxy for RR's
AS-level accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.aspaths import StampAudit
from repro.analysis.ip2as import Ip2As, build_ip2as
from repro.core.survey import RRSurvey
from repro.probing.vantage import Platform
from repro.rng import stable_rng
from repro.scenarios.internet import Scenario

__all__ = ["StampingStudy", "run_stamping_study"]


@dataclass
class StampingStudy:
    """§3.5's outcome: per-AS stamping verdicts."""

    audited_asns: int = 0
    verdicts: Dict[str, int] = field(default_factory=dict)
    never_asns: List[int] = field(default_factory=list)
    sometimes_asns: List[int] = field(default_factory=list)
    pairs_compared: int = 0
    distinct_dests: int = 0

    @property
    def always_fraction(self) -> float:
        if not self.audited_asns:
            return 0.0
        return self.verdicts.get("always", 0) / self.audited_asns

    def render(self) -> str:
        return (
            f"Stamping audit: {self.pairs_compared} traceroute/RR pairs "
            f"to {self.distinct_dests} destinations; "
            f"{self.audited_asns} ASes audited — "
            f"{self.verdicts.get('always', 0)} always stamped, "
            f"{self.verdicts.get('sometimes', 0)} sometimes, "
            f"{self.verdicts.get('never', 0)} never "
            f"(never: {self.never_asns})"
        )


def run_stamping_study(
    scenario: Scenario,
    survey: RRSurvey,
    per_vp_cap: int = 500,
    min_observations: int = 3,
    ip2as: Optional[Ip2As] = None,
) -> StampingStudy:
    """Pair traceroutes with ping-RRs and audit per-AS stamping.

    ``min_observations`` keeps verdicts meaningful: an AS seen in a
    single traceroute cannot credibly be called "never stamping".
    """
    mapping = build_ip2as(scenario.table) if ip2as is None else ip2as
    audit = StampAudit(mapping, min_observations=min_observations)
    study = StampingStudy()
    prober = scenario.prober
    all_dests = set()

    for vp_index, vp in enumerate(survey.vps):
        if vp.platform is not Platform.MLAB or vp.local_filtered:
            continue
        reachable = survey.reachable_from_vp(vp_index)
        if len(reachable) > per_vp_cap:
            rng = stable_rng(scenario.seed, "stamp-audit", vp.name)
            reachable = rng.sample(reachable, per_vp_cap)
        for dest_index in reachable:
            dest = survey.dests[dest_index]
            trace = prober.traceroute(vp, dest.addr)
            rr = prober.ping_rr(vp, dest.addr)
            if not rr.rr_responsive:
                continue
            # Like the paper, audit every AS the measurements extract —
            # destination ASes included — excluding only the VP's own
            # AS (constant across its measurements, and its stamps are
            # a property of VP siting rather than remote policy).
            src_asn = mapping.asn_of(vp.addr)
            exclude = set() if src_asn is None else {src_asn}
            audit.add_pair(trace.hops, rr.rr_hops, exclude)
            study.pairs_compared += 1
            all_dests.add(dest.addr)

    study.distinct_dests = len(all_dests)
    study.verdicts = audit.verdict_counts()
    study.audited_asns = audit.audited_as_count
    study.never_asns = audit.asns_with_verdict("never")
    study.sometimes_asns = audit.asns_with_verdict("sometimes")
    return study
