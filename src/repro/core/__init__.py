"""The paper's contribution: the RR measurement methodology and studies."""

from repro.core.adaptive_rate import (
    AdaptiveRatePlan,
    RateCalibration,
    calibrate_rates,
)
from repro.core.atlas import (
    AtlasClient,
    AtlasPolicyError,
    AtlasStudy,
    place_atlas_probes,
    run_atlas_study,
)
from repro.core.cloud import CloudStudy, external_hop_count, run_cloud_study
from repro.core.drop_location import (
    DropLocalization,
    DropSite,
    DropStudy,
    localize_drop,
    run_drop_study,
)
from repro.core.longitudinal import (
    EpochStats,
    LongitudinalStudy,
    ProbingStrategy,
    exhaustive_strategy,
    prudent_strategy,
    run_longitudinal_study,
)
from repro.core.fusion import FusionReport, PathFusion, fuse_paths
from repro.core.onpath import OnPathResult, confirm_on_path, on_path_sweep
from repro.core.ratelimit import RateLimitStudy, run_rate_limit_study
from repro.core.reachability import (
    Figure1,
    REVERSE_PATH_HOP_LIMIT,
    build_figure1,
    figure_series,
    fraction_reachable,
    greedy_site_selection,
    reachability_cdf,
)
from repro.core.reclassify import ReclassificationReport, run_reclassification
from repro.core.report import banner, format_series, format_table
from repro.core.reverse_path import (
    ReversePathMeasurement,
    measure_reverse_path,
    reverse_coverage,
)
from repro.core.stamping_audit import StampingStudy, run_stamping_study
from repro.core.study import (
    StudyData,
    clear_study_cache,
    get_study,
    run_full_study,
    run_resilient_study,
)
from repro.core.survey import (
    PingSurvey,
    RRSurvey,
    SurveyFormatError,
    load_survey,
    run_ping_survey,
    run_rr_survey,
    save_survey,
)
from repro.core.table1 import Table1, build_table1, vp_response_fractions
from repro.core.temporal import Figure2, build_figure2, common_sites
from repro.core.ttl import DEFAULT_TTL_SWEEP, TtlStudy, run_ttl_study

__all__ = [
    "AdaptiveRatePlan",
    "RateCalibration",
    "calibrate_rates",
    "AtlasClient",
    "AtlasPolicyError",
    "AtlasStudy",
    "place_atlas_probes",
    "run_atlas_study",
    "CloudStudy",
    "external_hop_count",
    "run_cloud_study",
    "DropLocalization",
    "DropSite",
    "DropStudy",
    "localize_drop",
    "run_drop_study",
    "EpochStats",
    "LongitudinalStudy",
    "ProbingStrategy",
    "exhaustive_strategy",
    "prudent_strategy",
    "run_longitudinal_study",
    "FusionReport",
    "PathFusion",
    "fuse_paths",
    "OnPathResult",
    "confirm_on_path",
    "on_path_sweep",
    "RateLimitStudy",
    "run_rate_limit_study",
    "Figure1",
    "REVERSE_PATH_HOP_LIMIT",
    "build_figure1",
    "figure_series",
    "fraction_reachable",
    "greedy_site_selection",
    "reachability_cdf",
    "ReclassificationReport",
    "run_reclassification",
    "banner",
    "format_series",
    "format_table",
    "ReversePathMeasurement",
    "measure_reverse_path",
    "reverse_coverage",
    "StampingStudy",
    "run_stamping_study",
    "StudyData",
    "clear_study_cache",
    "get_study",
    "run_full_study",
    "PingSurvey",
    "RRSurvey",
    "SurveyFormatError",
    "load_survey",
    "run_ping_survey",
    "run_resilient_study",
    "run_rr_survey",
    "save_survey",
    "Table1",
    "build_table1",
    "vp_response_fractions",
    "Figure2",
    "build_figure2",
    "common_sites",
    "DEFAULT_TTL_SWEEP",
    "TtlStudy",
    "run_ttl_study",
]
