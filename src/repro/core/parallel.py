"""Per-VP process fan-out: the parallel survey engine.

The paper's headline artifact is an all-VPs × all-prefixes ping-RR
campaign (§3.1). Its parallelism structure is exactly the one real
platforms exploit (each RIPE-Atlas/M-Lab vantage point paces and
probes independently): one VP's complete probe sequence shares no
*order-sensitive* state with any other VP's, so the campaign shards
cleanly across a :mod:`multiprocessing` worker pool with one VP per
task.

Determinism contract (enforced by ``Network.begin_vp_session`` and
tested byte-for-byte in ``tests/test_parallel_survey.py``):

* each VP probes its destinations in its own seeded order
  (``order_destinations(seed, salt=vp.name)``);
* each VP's sequence runs against **fresh token buckets** (rate-limiter
  state is per-worker by design, matching the paper's independent-VP
  pacing) and a **per-VP loss stream** seeded from ``(seed, vp.name)``;
* everything else the dataplane walk touches — router policies, hosts,
  routing trees, forward-path expansions — is value-deterministic, so
  warm caches change speed, never results.

Under those rules the serial loop and any worker pool produce the same
rows, and ``save_survey`` output is byte-identical for any ``jobs``.

Worker plumbing: under the default ``fork`` start method workers
inherit the parent's scenario copy-on-write (zero rebuild cost); under
``spawn`` each worker rebuilds the scenario from its
:class:`~repro.scenarios.internet.ScenarioParams` (bit-identical by
construction). Each task returns compact result rows plus a pruned
metrics-registry snapshot and the worker's per-AS options-load delta;
the parent folds snapshots back with
:meth:`repro.obs.metrics.MetricsRegistry.merge`, so campaign totals in
``repro stats`` look exactly like a serial run's.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import REGISTRY
from repro.obs.spans import TRACER
from repro.probing.prober import DEFAULT_PPS
from repro.probing.scheduler import ProbeOrder, split_round_robin
from repro.probing.vantage import VantagePoint
from repro.scenarios.internet import Scenario, build_scenario
from repro.topology.hitlist import Destination

__all__ = [
    "ParallelSurveyRunner",
    "SurveyWorkerError",
    "default_jobs",
    "parent_scenario",
    "run_pooled_tasks",
]


class SurveyWorkerError(RuntimeError):
    """A worker task failed, attributed to the unit of work that owned it.

    Raw exceptions crossing a :mod:`multiprocessing` pool arrive in the
    parent stripped of any clue *which* task died — useless for a
    campaign that needs to retry (or report) the right vantage point.
    Worker task bodies therefore wrap failures in this error, which
    names the task kind (``"rr"`` / ``"ping"``), the task index, and
    the owning VP (or shard) before the traceback ships home.

    All constructor arguments are forwarded to ``RuntimeError`` so the
    exception round-trips through pickle (``BaseException`` pickles by
    re-calling ``__init__(*args)``).
    """

    def __init__(
        self, task_kind: str, index: int, name: str, message: str
    ) -> None:
        super().__init__(task_kind, index, name, message)
        self.task_kind = task_kind
        self.index = index
        self.name = name
        self.message = message

    def __str__(self) -> str:
        return (
            f"{self.task_kind} worker task {self.index} "
            f"({self.name}) failed: {self.message}"
        )


def default_jobs() -> int:
    """The fan-out used for ``jobs=None``: one worker per CPU."""
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Worker-side state.
#
# ``_PARENT_SCENARIO`` is the fork-inheritance handoff: the parent sets
# it just before creating the pool; forked children see it and reuse
# the inherited (copy-on-write) scenario. Spawned children re-import
# this module, find it ``None``, and rebuild from the pickled params.
# ---------------------------------------------------------------------------

_PARENT_SCENARIO: Optional[Scenario] = None
_WORKER: Optional[dict] = None


@contextlib.contextmanager
def parent_scenario(scenario: Scenario) -> Iterator[None]:
    """Expose ``scenario`` to forked workers for the ``with`` body.

    Factored out of :meth:`ParallelSurveyRunner._run_pool` so the
    campaign runner (``repro.faults.campaign``) can drive its own pool
    with the same fork-inheritance handoff.
    """
    global _PARENT_SCENARIO
    _PARENT_SCENARIO = scenario
    try:
        yield
    finally:
        _PARENT_SCENARIO = None


def _init_worker(payload: dict) -> None:
    global _WORKER
    scenario = _PARENT_SCENARIO
    if scenario is None:
        scenario = build_scenario(payload["params"])
    _WORKER = dict(payload, scenario=scenario)
    # Span tracing follows the parent's setting explicitly: forked
    # workers inherit the parent tracer's flag, spawned workers start
    # disabled — the payload key makes both behave the same.
    TRACER.configure(bool(payload.get("spans", False)))
    # The batched-dataplane switch rides along the same way, so a
    # legacy-mode parent benchmarks legacy workers (and parity runs
    # compare like against like). Workers compile their own plans.
    scenario.prober.batching = bool(payload.get("batch", True))


def _compact_snapshot(snapshot: Dict[str, dict]) -> Dict[str, dict]:
    """Prune a worker snapshot before shipping it to the parent.

    Zero-valued series carry no information; gauges are process-local
    levels (cache sizes of a throwaway worker) whose last-write-wins
    merge semantics would stomp the parent's own values, so workers
    never ship them.
    """
    out: Dict[str, dict] = {}
    for name, family in snapshot.items():
        if family["type"] == "gauge":
            continue
        if family["type"] == "histogram":
            series = [s for s in family["series"] if s["count"]]
        else:
            series = [s for s in family["series"] if s["value"]]
        if series:
            out[name] = dict(family, series=series)
    return out


def run_pooled_tasks(
    scenario: Scenario,
    payload: dict,
    task,
    tasks: Sequence,
    jobs: int,
    mp_context: Optional[multiprocessing.context.BaseContext] = None,
    unpack=None,
) -> List[tuple]:
    """Map ``task`` over ``tasks`` in a worker pool, folding telemetry.

    The one pooled-execution shape every fan-out in the repo shares:
    expose the scenario for fork inheritance, initialise workers from
    ``payload``, dispatch with ``imap_unordered`` (completion order is
    irrelevant because results are re-sorted by their first element —
    the task key — before any merging), then fold each result's
    telemetry back into the parent in key order so registry totals and
    span buffers are independent of completion order.

    ``unpack(item) -> (snapshot, options_load_delta, spans)`` tells the
    fold where a task result keeps its telemetry; pass ``None`` to skip
    folding entirely (caller does its own).
    """
    ctx = multiprocessing.get_context() if mp_context is None else mp_context
    tasks = list(tasks)
    results: List[tuple] = []
    with parent_scenario(scenario):
        with ctx.Pool(
            processes=max(1, min(jobs, len(tasks))),
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            for item in pool.imap_unordered(task, tasks, chunksize=1):
                results.append(item)
    results.sort(key=lambda item: item[0])
    if unpack is not None:
        options_load = scenario.network.options_load
        for item in results:
            snapshot, load_delta, spans = unpack(item)
            REGISTRY.merge(snapshot)
            TRACER.merge(spans)
            for asn, count in load_delta.items():
                options_load[asn] = options_load.get(asn, 0) + count
    return results


def _rr_task(vp_index: int) -> tuple:
    """One VP's full ping-RR sequence, in an isolated metrics window."""
    from repro.core.survey import probe_vp_rr

    state = _WORKER
    assert state is not None, "worker initialized without state"
    scenario: Scenario = state["scenario"]
    # The registry (and span buffer) in this process is a private copy
    # (fork) or fresh (spawn); zeroing both per task makes the closing
    # snapshots exactly this task's contribution.
    REGISTRY.reset()
    TRACER.reset()
    scenario.network.options_load.clear()
    targets: List[Destination] = state["targets"]
    position: Dict[int, int] = state["position"]
    vp: VantagePoint = state["vps"][vp_index]
    try:
        rows = probe_vp_rr(
            scenario,
            vp,
            targets,
            position,
            order=state["order"],
            slots=state["slots"],
            pps=state["pps"],
            validate=state.get("validate", True),
        )
    except Exception as exc:  # noqa: BLE001 — attribute, then re-raise
        raise SurveyWorkerError(
            "rr", vp_index, vp.name, f"{type(exc).__name__}: {exc}"
        ) from exc
    return (
        vp_index,
        rows,
        _compact_snapshot(REGISTRY.snapshot()),
        dict(scenario.network.options_load),
        TRACER.snapshot(),
    )


def _ping_task(shard_index: int) -> tuple:
    """One fixed destination shard of the origin plain-ping study."""
    from repro.core.survey import probe_ping_shard

    state = _WORKER
    assert state is not None, "worker initialized without state"
    scenario: Scenario = state["scenario"]
    REGISTRY.reset()
    TRACER.reset()
    scenario.network.options_load.clear()
    shard: List[Destination] = state["shards"][shard_index]
    try:
        rows = probe_ping_shard(
            scenario,
            shard_index,
            shard,
            count=state["count"],
            pps=state["pps"],
        )
    except Exception as exc:  # noqa: BLE001 — attribute, then re-raise
        raise SurveyWorkerError(
            "ping",
            shard_index,
            f"shard-{shard_index}",
            f"{type(exc).__name__}: {exc}",
        ) from exc
    return (
        shard_index,
        rows,
        _compact_snapshot(REGISTRY.snapshot()),
        dict(scenario.network.options_load),
        TRACER.snapshot(),
    )


class ParallelSurveyRunner:
    """Shards survey campaigns across a per-VP process pool.

    One instance wraps one scenario; :meth:`run_rr` and
    :meth:`run_ping` each spin up a pool of ``jobs`` workers, dispatch
    one VP (or destination shard) per task, and merge compact rows,
    metrics snapshots, and options-load deltas back into the parent.

    Usually reached through ``run_rr_survey(..., jobs=N)`` /
    ``run_ping_survey(..., jobs=N)`` rather than directly.
    """

    def __init__(
        self,
        scenario: Scenario,
        jobs: Optional[int] = None,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        self.scenario = scenario
        self.jobs = default_jobs() if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive: {jobs}")
        self._ctx = (
            multiprocessing.get_context() if mp_context is None else mp_context
        )

    # -- plumbing ---------------------------------------------------------

    def _run_pool(
        self, payload: dict, task, task_count: int, workers: int
    ) -> List[tuple]:
        """Run ``task`` over ``range(task_count)``, merging telemetry.

        Results are re-ordered by task index before metric merging so
        parent-side totals are independent of completion order.
        """
        return run_pooled_tasks(
            self.scenario,
            payload,
            task,
            range(task_count),
            workers,
            mp_context=self._ctx,
            unpack=lambda item: (item[2], item[3], item[4]),
        )

    # -- campaigns ---------------------------------------------------------

    def run_rr(
        self,
        targets: Sequence[Destination],
        vps: Sequence[VantagePoint],
        pps: float = DEFAULT_PPS,
        order: ProbeOrder = ProbeOrder.RANDOM,
        slots: int = 9,
        validate: bool = True,
    ) -> List[tuple]:
        """Per-VP result rows for the RR survey, in VP order."""
        targets = list(targets)
        payload = {
            "params": self.scenario.params,
            "targets": targets,
            "position": {
                dest.addr: index for index, dest in enumerate(targets)
            },
            "vps": list(vps),
            "order": order,
            "slots": slots,
            "pps": pps,
            "spans": TRACER.enabled,
            "batch": self.scenario.prober.batching,
            "validate": validate,
        }
        results = self._run_pool(payload, _rr_task, len(payload["vps"]),
                                 self.jobs)
        return [rows for _index, rows, _snap, _load, _spans in results]

    def run_ping(
        self,
        targets: Sequence[Destination],
        count: int = 3,
        pps: float = DEFAULT_PPS,
    ) -> List[Tuple[int, bool]]:
        """(addr, responded) pairs for the ping survey, in shard-deal
        order — identical for every parallel degree."""
        from repro.core.survey import PING_SHARDS

        targets = list(targets)
        shards = split_round_robin(
            targets, min(PING_SHARDS, len(targets))
        )
        payload = {
            "params": self.scenario.params,
            "shards": shards,
            "count": count,
            "pps": pps,
            "spans": TRACER.enabled,
            "batch": self.scenario.prober.batching,
        }
        results = self._run_pool(payload, _ping_task, len(shards), self.jobs)
        merged: List[Tuple[int, bool]] = []
        for _index, rows, _snap, _load, _spans in results:
            merged.extend(rows)
        return merged
