"""§3.3: are destinations within the nine-hop limit? (Figure 1)

Computes closest-VP RR-hop distances over RR-responsive destinations,
the Figure 1 CDFs for VP subsets (all M-Lab, the best ten M-Lab sites,
one site, all PlanetLab), the headline reachability fractions (66%
within nine hops, ~60% within the eight hops reverse traceroute
needs), and the greedy site-selection trade-off ("73% with one site
... 95% with 10").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cdf import Cdf
from repro.analysis.stats import fraction, greedy_set_cover
from repro.core.survey import RRSurvey
from repro.probing.vantage import Platform

__all__ = [
    "reachability_cdf",
    "fraction_reachable",
    "greedy_site_selection",
    "Figure1",
    "build_figure1",
    "REVERSE_PATH_HOP_LIMIT",
]

#: Reverse traceroute needs the destination within eight hops so at
#: least one slot remains to record the reverse path [11].
REVERSE_PATH_HOP_LIMIT = 8


def reachability_cdf(
    survey: RRSurvey, vp_indices: Optional[Sequence[int]] = None
) -> Tuple[Cdf, int]:
    """Closest-VP distance CDF over RR-responsive destinations.

    Returns ``(cdf-of-min-slots, rr_responsive_count)``; the figure's
    y axis is ``cdf.at(x) * len(cdf) / rr_responsive_count`` — i.e.
    normalised by all RR-responsive destinations so unreachable ones
    hold the curve below 1.0 (Figure 1 tops out around 0.66).
    """
    slots = []
    responsive = 0
    for index in range(len(survey.dests)):
        if not survey.rr_responsive(index):
            continue
        responsive += 1
        slot = survey.min_slot(index, vp_indices)
        if slot is not None:
            slots.append(slot)
    return Cdf(slots), responsive


def figure_series(
    survey: RRSurvey,
    vp_indices: Optional[Sequence[int]] = None,
    max_hops: int = 9,
) -> List[Tuple[int, float]]:
    """The plottable Figure 1/2 series: x = 1..max_hops, y = fraction
    of RR-responsive destinations within x RR hops of the VP set."""
    cdf, responsive = reachability_cdf(survey, vp_indices)
    if responsive == 0:
        return [(x, 0.0) for x in range(1, max_hops + 1)]
    scale = len(cdf) / responsive
    return [(x, cdf.at(x) * scale) for x in range(1, max_hops + 1)]


def fraction_reachable(
    survey: RRSurvey,
    vp_indices: Optional[Sequence[int]] = None,
    hop_limit: int = 9,
) -> float:
    """Fraction of RR-responsive destinations within ``hop_limit``."""
    responsive = reachable = 0
    for index in range(len(survey.dests)):
        if not survey.rr_responsive(index):
            continue
        responsive += 1
        slot = survey.min_slot(index, vp_indices)
        if slot is not None and slot <= hop_limit:
            reachable += 1
    return fraction(reachable, responsive)


def greedy_site_selection(
    survey: RRSurvey,
    platform: Platform = Platform.MLAB,
    max_picks: int = 10,
    hop_limit: int = 9,
) -> List[Tuple[str, float]]:
    """§3.3's greedy M-Lab site picker.

    Returns ``(site, cumulative coverage)`` pairs where coverage is the
    fraction of *all-VPs* RR-reachable destinations covered so far —
    the paper's "73% with one site (NYC), ... 95% with 10" statistic.
    """
    universe = set(survey.reachable_indices())
    if not universe:
        return []
    sites: Dict[str, set] = {}
    for vp_index, vp in enumerate(survey.vps):
        if vp.platform is not platform:
            continue
        covered = {
            index
            for index in universe
            if (slot := survey.slot_from_vp(index, vp_index)) is not None
            and slot <= hop_limit
        }
        sites.setdefault(vp.site, set()).update(covered)
    candidates = [
        (site, frozenset(covered)) for site, covered in sites.items()
    ]
    picks = greedy_set_cover(len(universe), candidates, max_picks=max_picks)
    return [
        (site, covered_count / len(universe))
        for site, covered_count in picks
    ]


@dataclass
class Figure1:
    """Figure 1's four series plus the §3.3 headline numbers."""

    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    greedy: List[Tuple[str, float]] = field(default_factory=list)
    reachable_9: float = 0.0
    reachable_8: float = 0.0
    planetlab_vs_full: float = 0.0  # PL coverage / full-set coverage

    def render(self) -> str:
        lines = ["Figure 1 — RR hops from closest vantage point (CDF):"]
        xs = [x for x, _y in next(iter(self.series.values()))]
        header = "hops:".rjust(22) + "".join(f"{x:>7}" for x in xs)
        lines.append(header)
        for label, series in self.series.items():
            lines.append(
                f"{label:>21} " + "".join(f"{y:7.3f}" for _x, y in series)
            )
        lines.append(
            f"RR-reachable within 9 hops: {self.reachable_9:.1%}; "
            f"within 8 (reverse-path limit): {self.reachable_8:.1%}"
        )
        greedy_text = ", ".join(
            f"{count + 1}:{site}={coverage:.0%}"
            for count, (site, coverage) in enumerate(self.greedy)
        )
        lines.append(f"Greedy M-Lab sites: {greedy_text}")
        return "\n".join(lines)


def build_figure1(survey: RRSurvey, max_hops: int = 9) -> Figure1:
    """All of Figure 1 from one RR survey."""
    figure = Figure1()
    mlab = survey.vp_indices(platform=Platform.MLAB)
    planetlab = survey.vp_indices(platform=Platform.PLANETLAB)
    greedy = greedy_site_selection(survey, Platform.MLAB, max_picks=10)
    figure.greedy = greedy

    figure.series["all M-Lab sites"] = figure_series(survey, mlab, max_hops)
    if greedy:
        top_sites = [site for site, _cov in greedy]
        figure.series["10 M-Lab sites"] = figure_series(
            survey,
            survey.vp_indices(platform=Platform.MLAB, sites=top_sites[:10]),
            max_hops,
        )
        figure.series["1 M-Lab site"] = figure_series(
            survey,
            survey.vp_indices(platform=Platform.MLAB, sites=top_sites[:1]),
            max_hops,
        )
    figure.series["all PlanetLab sites"] = figure_series(
        survey, planetlab, max_hops
    )

    figure.reachable_9 = fraction_reachable(survey, hop_limit=9)
    figure.reachable_8 = fraction_reachable(
        survey, hop_limit=REVERSE_PATH_HOP_LIMIT
    )
    full = fraction_reachable(survey, hop_limit=9)
    planetlab_cov = fraction_reachable(survey, planetlab, hop_limit=9)
    figure.planetlab_vs_full = fraction(
        round(planetlab_cov * 10_000), round(full * 10_000)
    )
    return figure
