"""Adaptive per-VP probing rates (§4.1's closing recommendation).

"VPs with lower rate limits are easy to detect and can be configured
to use lower VP-specific probing rates to achieve high response
rates." This module implements that loop:

1. **calibrate** — from each VP, probe a small sample of known
   RR-responsive destinations at a ladder of rates (highest first) and
   measure the response rate at each;
2. **select** — pick the fastest rate whose response loss relative to
   the slowest (safest) rate stays under a tolerance;
3. **apply** — run the real batch at the per-VP rate and compare
   against the naive fixed-rate plan.

The output quantifies both sides of the §4.1 trade: responses
recovered at limited VPs, and wall-clock probing time saved at
unlimited ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.survey import RRSurvey
from repro.probing.vantage import VantagePoint
from repro.rng import stable_rng
from repro.scenarios.internet import Scenario

__all__ = ["RateCalibration", "AdaptiveRatePlan", "calibrate_rates"]

#: Default probing-rate ladder, fastest first (pps).
DEFAULT_LADDER: Tuple[float, ...] = (100.0, 50.0, 20.0, 10.0)


@dataclass
class RateCalibration:
    """One VP's measured response rate per probing rate."""

    vp_name: str
    #: rate (pps) -> (responses, probes)
    observations: Dict[float, Tuple[int, int]] = field(default_factory=dict)
    chosen_pps: Optional[float] = None

    def response_rate(self, pps: float) -> float:
        responses, probes = self.observations.get(pps, (0, 0))
        return responses / probes if probes else 0.0

    @property
    def limited(self) -> bool:
        """Did this VP have to back off below the fastest rung?"""
        if self.chosen_pps is None:
            return True
        return self.chosen_pps < max(self.observations)


@dataclass
class AdaptiveRatePlan:
    """The calibrated per-VP rates plus summary statistics."""

    ladder: Tuple[float, ...]
    tolerance: float
    calibrations: List[RateCalibration] = field(default_factory=list)
    skipped_vps: List[str] = field(default_factory=list)

    def rate_for(self, vp_name: str) -> Optional[float]:
        for calibration in self.calibrations:
            if calibration.vp_name == vp_name:
                return calibration.chosen_pps
        return None

    @property
    def limited_vps(self) -> List[str]:
        return sorted(
            calibration.vp_name
            for calibration in self.calibrations
            if calibration.limited
        )

    def speedup_vs_fixed(self, fixed_pps: float) -> float:
        """Probing-time ratio of a fixed-rate plan to this plan.

        >1 means the adaptive plan finishes faster for the same probe
        count (most VPs run at the ladder's top rung instead of the
        conservative fixed rate).
        """
        rates = [
            calibration.chosen_pps
            for calibration in self.calibrations
            if calibration.chosen_pps
        ]
        if not rates:
            return 1.0
        adaptive_time = sum(1.0 / rate for rate in rates)
        fixed_time = len(rates) / fixed_pps
        return fixed_time / adaptive_time

    def render(self) -> str:
        lines = [
            f"Adaptive rate calibration (ladder "
            f"{'/'.join(f'{r:g}' for r in self.ladder)} pps, "
            f"tolerance {self.tolerance:.0%}):",
            f"{'VP':>24} {'chosen':>8} "
            + "".join(f"{r:>8g}" for r in self.ladder),
        ]
        for calibration in sorted(
            self.calibrations, key=lambda c: c.vp_name
        ):
            rates = "".join(
                f"{calibration.response_rate(r):>8.0%}"
                for r in self.ladder
            )
            chosen = (
                f"{calibration.chosen_pps:g}"
                if calibration.chosen_pps
                else "-"
            )
            lines.append(f"{calibration.vp_name:>24} {chosen:>8} {rates}")
        lines.append(
            f"{len(self.limited_vps)} VP(s) backed off below the top "
            f"rate: {self.limited_vps}"
        )
        return "\n".join(lines)


def calibrate_rates(
    scenario: Scenario,
    survey: RRSurvey,
    ladder: Sequence[float] = DEFAULT_LADDER,
    sample_size: int = 60,
    tolerance: float = 0.10,
    vps: Optional[Sequence[VantagePoint]] = None,
    min_baseline: float = 0.2,
) -> AdaptiveRatePlan:
    """Calibrate a per-VP probing rate for every (working) VP.

    A VP whose response rate is below ``min_baseline`` even at the
    slowest rung is skipped (it is filtered, not rate limited — the
    Figure 4 exclusion, automated).
    """
    rates = tuple(sorted(set(ladder), reverse=True))
    if len(rates) < 2:
        raise ValueError("need at least two rates to calibrate")
    plan = AdaptiveRatePlan(ladder=rates, tolerance=tolerance)
    rng = stable_rng(scenario.seed, "adaptive-rate")
    responsive = survey.rr_responsive_indices()
    if not responsive:
        return plan
    sample_indices = (
        rng.sample(responsive, sample_size)
        if len(responsive) > sample_size
        else list(responsive)
    )
    sample = [survey.dests[index].addr for index in sample_indices]
    vp_list = list(survey.vps) if vps is None else list(vps)

    for vp in vp_list:
        calibration = RateCalibration(vp_name=vp.name)
        for rate in rates:
            scenario.network.reset_limiters()
            ordered = list(sample)
            stable_rng(scenario.seed, "adaptive-order", vp.name,
                       rate).shuffle(ordered)
            results = scenario.prober.batch_ping_rr(vp, ordered, pps=rate)
            responses = sum(1 for r in results if r.rr_responsive)
            calibration.observations[rate] = (responses, len(ordered))
        baseline = calibration.response_rate(rates[-1])
        if baseline < min_baseline:
            plan.skipped_vps.append(vp.name)
            continue
        # Fastest rate whose loss vs the safe baseline is tolerable.
        for rate in rates:
            if calibration.response_rate(rate) >= baseline * (
                1.0 - tolerance
            ):
                calibration.chosen_pps = rate
                break
        if calibration.chosen_pps is None:
            calibration.chosen_pps = rates[-1]
        plan.calibrations.append(calibration)
    return plan
