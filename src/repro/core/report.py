"""Plain-text rendering helpers for paper-style tables and series."""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = ["format_table", "format_series", "banner"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Align ``rows`` under ``headers`` (all cells str()-ed)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    label: str, series: Sequence[Tuple[float, float]], precision: int = 3
) -> str:
    """One CDF series as a compact, plot-ready line."""
    points = " ".join(f"{x:g}:{y:.{precision}f}" for x, y in series)
    return f"{label}: {points}"


def banner(title: str, width: int = 72) -> str:
    """A section banner for study output."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"
