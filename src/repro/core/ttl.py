"""§4.2 / Figure 5: choosing low-impact TTLs.

A ping-RR stops gaining information once its nine slots fill, but the
packet keeps burning slow-path cycles on every remaining router. The
mitigation: cap the initial TTL so probes expire shortly after their
slots would fill — the TTL-exceeded error quotes the RR contents, so
nothing measured is lost.

The experiment: per VP, equal-sized sets of RR-reachable (near) and
non-RR-reachable (far) RR-responsive destinations, probed at a sweep
of initial TTLs; plot the echo-reply rate per TTL for each class. Too
low a TTL starves the near set; too high stops expiring the far set.
The paper finds TTLs of 10-12 the sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.survey import RRSurvey
from repro.rng import stable_rng
from repro.scenarios.internet import Scenario

__all__ = ["TtlStudy", "run_ttl_study", "DEFAULT_TTL_SWEEP"]

#: The paper's sweep: 3..23 plus the standard default of 64.
DEFAULT_TTL_SWEEP: Tuple[int, ...] = tuple(range(3, 24)) + (64,)


@dataclass
class TtlStudy:
    """Figure 5's two response-rate curves."""

    ttls: List[int] = field(default_factory=list)
    #: ttl -> (responses, probes) per destination class.
    reachable: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    unreachable: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: ttl -> quoted-RR recoveries among expired reachable-set probes.
    quoted: Dict[int, int] = field(default_factory=dict)

    def rate(self, ttl: int, reachable: bool) -> float:
        table = self.reachable if reachable else self.unreachable
        responses, probes = table.get(ttl, (0, 0))
        return responses / probes if probes else 0.0

    def best_window(
        self, reach_floor: float = 0.6, unreach_ceiling: float = 0.5
    ) -> List[int]:
        """TTLs keeping the near set mostly responsive while still
        expiring most far-set probes — the 10-12 recommendation."""
        return [
            ttl
            for ttl in self.ttls
            if self.rate(ttl, True) >= reach_floor
            and self.rate(ttl, False) <= unreach_ceiling
        ]

    def render(self) -> str:
        lines = [
            "Figure 5 — responsive rate vs initial TTL:",
            f"{'TTL':>5} {'RR-reachable':>14} {'RR-unreachable':>15} "
            f"{'quoted-RR':>10}",
        ]
        for ttl in self.ttls:
            lines.append(
                f"{ttl:>5} {self.rate(ttl, True):>13.0%} "
                f"{self.rate(ttl, False):>14.0%} "
                f"{self.quoted.get(ttl, 0):>10}"
            )
        lines.append(f"low-impact TTL window: {self.best_window()}")
        return "\n".join(lines)


def run_ttl_study(
    scenario: Scenario,
    survey: RRSurvey,
    per_class_per_vp: int = 30,
    ttls: Sequence[int] = DEFAULT_TTL_SWEEP,
    max_vps: int = 12,
) -> TtlStudy:
    """Reproduce Figure 5's TTL sweep.

    Each working VP probes equal-sized near (RR-reachable *from it*)
    and far (RR-responsive but not reachable from it) samples at every
    TTL in the sweep; results aggregate across VPs.
    """
    study = TtlStudy(ttls=list(ttls))
    rng = stable_rng(scenario.seed, "ttl-study")
    prober = scenario.prober
    reach_counts = {ttl: [0, 0] for ttl in ttls}
    unreach_counts = {ttl: [0, 0] for ttl in ttls}
    quoted = {ttl: 0 for ttl in ttls}

    working = [
        (index, vp)
        for index, vp in enumerate(survey.vps)
        if not vp.local_filtered
    ][:max_vps]
    responsive = set(survey.rr_responsive_indices())

    for vp_index, vp in working:
        near_pool = survey.reachable_from_vp(vp_index)
        far_pool = sorted(responsive - set(near_pool))
        size = min(len(near_pool), len(far_pool), per_class_per_vp)
        if size == 0:
            continue
        near = rng.sample(near_pool, size)
        far = rng.sample(far_pool, size)
        for ttl in ttls:
            for dest_index in near:
                dest = survey.dests[dest_index]
                result = prober.ping_rr(vp, dest.addr, ttl=ttl)
                reach_counts[ttl][1] += 1
                if result.responded:
                    reach_counts[ttl][0] += 1
                elif result.ttl_exceeded and result.quoted_rr_hops:
                    quoted[ttl] += 1
            for dest_index in far:
                dest = survey.dests[dest_index]
                result = prober.ping_rr(vp, dest.addr, ttl=ttl)
                unreach_counts[ttl][1] += 1
                if result.responded:
                    unreach_counts[ttl][0] += 1

    study.reachable = {
        ttl: (hits, probes) for ttl, (hits, probes) in reach_counts.items()
    }
    study.unreachable = {
        ttl: (hits, probes)
        for ttl, (hits, probes) in unreach_counts.items()
    }
    study.quoted = quoted
    return study
